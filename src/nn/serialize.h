// Save/load of module parameters as a simple self-describing text format:
//   carol-params v1
//   <count>
//   <name> <rows> <cols>
//   <row-major doubles...>
// Used to persist the offline-trained GON between the trace-generation and
// evaluation phases of the bench harness.
#ifndef CAROL_NN_SERIALIZE_H_
#define CAROL_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "nn/layers.h"

namespace carol::nn {

// Writes all parameters of `module` to `path`.
// Throws std::runtime_error on IO failure.
void SaveParameters(Module& module, const std::string& path);

// Loads parameters into `module`. Names, order and shapes must match what
// SaveParameters wrote; throws std::runtime_error otherwise.
void LoadParameters(Module& module, const std::string& path);

// Binary parameter checkpoints ("carol-params-bin" v1): doubles are
// written as raw IEEE-754 bit patterns, so Save -> Load round-trips are
// bit-exact — the property the serving layer's snapshot/restore
// bit-identity guarantee rests on (the text format above goes through
// decimal and is only exact to 17 significant digits). Same strict
// name/order/shape matching as the text loaders; the reader throws
// common::BinaryFormatError on foreign or truncated input.
void SaveParametersBinary(Module& module, std::ostream& out);
void LoadParametersBinary(Module& module, std::istream& in);

// In-memory weight clone between two architecturally identical modules
// (same parameter names, order and shapes); throws std::runtime_error on
// any mismatch. The serving layer uses this to broadcast master weights
// into per-worker GON replicas without touching disk.
void CopyParameters(Module& from, Module& to);

}  // namespace carol::nn

#endif  // CAROL_NN_SERIALIZE_H_
