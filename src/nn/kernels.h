// Shared forward kernels for the nn fast path.
//
// Both the autograd tape ops (src/nn/autograd.cpp) and the tape-free GON
// inference workspace (src/core/gon.cpp) call these, so the two paths are
// bitwise-identical by construction: there is exactly one implementation
// of each scalar activation, of the fused linear layer, and of the masked
// row softmax.
#ifndef CAROL_NN_KERNELS_H_
#define CAROL_NN_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/matrix.h"

namespace carol::nn {

// Activation fused into a Linear (x*W + b) node / kernel.
enum class FusedAct { kNone, kRelu, kSigmoid, kTanh };

namespace scalar_ops {

inline double Relu(double v) { return v > 0.0 ? v : 0.0; }

inline double Tanh(double v) { return std::tanh(v); }

// Branch on the sign for numerical stability.
inline double Sigmoid(double v) {
  if (v >= 0.0) return 1.0 / (1.0 + std::exp(-v));
  const double e = std::exp(v);
  return e / (1.0 + e);
}

}  // namespace scalar_ops

// Applies `act` elementwise in place.
inline void ApplyActivationInPlace(Matrix& m, FusedAct act) {
  switch (act) {
    case FusedAct::kNone:
      return;
    case FusedAct::kRelu:
      m.MapInPlaceFn(scalar_ops::Relu);
      return;
    case FusedAct::kSigmoid:
      m.MapInPlaceFn(scalar_ops::Sigmoid);
      return;
    case FusedAct::kTanh:
      m.MapInPlaceFn(scalar_ops::Tanh);
      return;
  }
  throw std::logic_error("ApplyActivationInPlace: unknown activation");
}

// out = act(x * w + b), b broadcast across rows ([1 x w.cols]).
// `out` is reshaped in place and must not alias an operand.
inline void LinearForward(const Matrix& x, const Matrix& w, const Matrix& b,
                          FusedAct act, Matrix& out) {
  if (b.rows() != 1 || b.cols() != w.cols()) {
    throw std::invalid_argument("LinearForward: bias must be 1 x w.cols");
  }
  Matrix::MatMulInto(x, w, out);
  const double* bias = b.flat().data();
  double* od = out.flat().data();
  const std::size_t rows = out.rows(), cols = out.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    double* orow = od + r * cols;
    for (std::size_t c = 0; c < cols; ++c) orow[c] += bias[c];
  }
  ApplyActivationInPlace(out, act);
}

// Row-wise softmax restricted to positions where mask(r,c) == 1;
// masked-out positions produce exactly 0. Rows with an empty mask produce
// all zeros. `out` is reshaped in place.
inline void MaskedRowSoftmaxForward(const Matrix& x, const Matrix& mask,
                                    Matrix& out) {
  if (mask.rows() != x.rows() || mask.cols() != x.cols()) {
    throw std::invalid_argument("MaskedRowSoftmax: mask shape mismatch");
  }
  out.AssignZeros(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < x.cols(); ++c) {
      if (mask(r, c) != 0.0) mx = std::max(mx, x(r, c));
    }
    if (!std::isfinite(mx)) continue;  // empty row mask -> zeros
    double denom = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      if (mask(r, c) != 0.0) {
        out(r, c) = std::exp(x(r, c) - mx);
        denom += out(r, c);
      }
    }
    for (std::size_t c = 0; c < x.cols(); ++c) {
      if (mask(r, c) != 0.0) out(r, c) /= denom;
    }
  }
}

}  // namespace carol::nn

#endif  // CAROL_NN_KERNELS_H_
