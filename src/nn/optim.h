// First-order optimizers. The paper trains/fine-tunes the GON with Adam
// (lr 1e-4, weight decay 1e-5); SGD is kept for tests and baselines.
#ifndef CAROL_NN_OPTIM_H_
#define CAROL_NN_OPTIM_H_

#include <vector>

#include "nn/layers.h"

namespace carol::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated Parameter::grad values.
  virtual void Step() = 0;
  void ZeroGrad();
  std::size_t num_parameters() const;

 protected:
  std::vector<Parameter*> params_;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0);
  void Step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

// Adam with decoupled weight decay (AdamW-style, matching PyTorch's
// Adam(weight_decay=...) coupling: decay added to the gradient).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void Step() override;
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  long step_count_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace carol::nn

#endif  // CAROL_NN_OPTIM_H_
