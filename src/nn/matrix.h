// Dense row-major matrix of doubles. This is the only tensor type in the
// from-scratch deep-learning substrate; the networks in the paper (128-unit
// feed-forward stacks, one graph-attention layer, small LSTMs) are small
// enough that a straightforward dense CPU implementation is faithful.
//
// Hot-path design (see src/nn/README.md):
//   * MatMul runs a cache-blocked i-k-j kernel over the flat row-major
//     buffers; the blocked kernel accumulates over k in index order, so it
//     is bitwise-identical to the textbook i-k-j loop.
//   * The `*Into` / `*Accum` variants write into caller-owned destinations
//     so per-interval code (the autograd tape, the GON inference
//     workspace) can recycle buffers instead of allocating per op.
//   * Elementwise transforms take the callable as a template parameter
//     (`MapFn`, `MapInPlaceFn`) so it inlines in the elementwise loop
//     (the old std::function `Map` is gone).
#ifndef CAROL_NN_MATRIX_H_
#define CAROL_NN_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace carol::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  // Builds from nested initializer data; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> data);

  static Matrix Zeros(std::size_t rows, std::size_t cols);
  static Matrix Ones(std::size_t rows, std::size_t cols);
  static Matrix Identity(std::size_t n);
  // I.i.d. normal entries.
  static Matrix Randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                      double mean = 0.0, double stddev = 1.0);
  // Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
  static Matrix Xavier(std::size_t fan_in, std::size_t fan_out,
                       common::Rng& rng);
  // Wraps a flat row-major buffer.
  static Matrix FromFlat(std::size_t rows, std::size_t cols,
                         std::vector<double> flat);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;
  double& at(std::size_t r, std::size_t c);

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  // --- buffer management (capacity is retained across calls) ---
  // Reshapes without initializing contents (they are unspecified).
  void Resize(std::size_t rows, std::size_t cols);
  // Reshapes and zero-fills.
  void AssignZeros(std::size_t rows, std::size_t cols);
  // Becomes a copy of `src`, reusing this matrix's buffer.
  void CopyFrom(const Matrix& src);
  // Copies rows [r0, r1) of `src` into this matrix ((r1-r0) x src.cols).
  void CopyRowsFrom(const Matrix& src, std::size_t r0, std::size_t r1);

  // Elementwise arithmetic. Shapes must match exactly; throws
  // std::invalid_argument otherwise.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  // --- in-place fast-path variants (no temporaries) ---
  Matrix& AddInPlace(const Matrix& other);                 // this += other
  Matrix& MulAddInPlace(const Matrix& other, double s);    // this += other*s
  Matrix& HadamardInPlace(const Matrix& other);            // this *= other
  Matrix& HadamardAccum(const Matrix& a, const Matrix& b); // this += a.*b
  // this(1 x cols) += per-column sums of `src` (bias-gradient reduction).
  Matrix& AddColumnSums(const Matrix& src);

  // Hadamard (elementwise) product.
  Matrix Hadamard(const Matrix& other) const;
  // Standard matrix product; inner dimensions must agree.
  Matrix MatMul(const Matrix& other) const;
  Matrix Transposed() const;
  // out becomes src^T; `out` is reshaped in place and must not alias src.
  static void TransposeInto(const Matrix& src, Matrix& out);

  // --- destination-passing matrix products ---
  // out = a * b. `out` must not alias an operand; it is reshaped in place.
  static void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out);
  // out += a * b; `out` must already be (a.rows x b.cols).
  static void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& out);
  // out += a^T * b (a stored un-transposed: [m x k] against b [m x n]).
  // Rank-1 row accumulation — the backward pass's  dW += X^T * dY.
  // (dX += dY * W^T goes through TransposeInto + MatMulAccum instead, so
  // the blocked kernel can skip the exact zeros ReLU leaves in dY.)
  static void MatMulTransAAccum(const Matrix& a, const Matrix& b,
                                Matrix& out);

  // Applies `fn` to every element, returning a new matrix. The callable
  // is a template parameter so it inlines in the elementwise loop.
  template <typename Fn>
  Matrix MapFn(Fn&& fn) const {
    Matrix out = *this;
    for (double& v : out.data_) v = fn(v);
    return out;
  }
  // In-place variant of MapFn.
  template <typename Fn>
  void MapInPlaceFn(Fn&& fn) {
    for (double& v : data_) v = fn(v);
  }

  // Appends the columns of `other` to the right; row counts must match.
  Matrix ConcatCols(const Matrix& other) const;
  // Stacks `other` below; column counts must match.
  Matrix ConcatRows(const Matrix& other) const;
  // Copies columns [c0, c1) into a new matrix.
  Matrix SliceCols(std::size_t c0, std::size_t c1) const;
  // Copies rows [r0, r1) into a new matrix.
  Matrix SliceRows(std::size_t r0, std::size_t r1) const;

  double Sum() const;
  double MeanValue() const;
  double MaxValue() const;
  double MinValue() const;
  // Frobenius norm.
  double Norm() const;
  // Mean over rows: returns a 1 x cols matrix.
  Matrix RowMean() const;
  // Sum over rows: returns a 1 x cols matrix.
  Matrix RowSum() const;

  void Fill(double value);
  // True if all entries are finite.
  bool AllFinite() const;
  // Max |a - b| over elements; shapes must match.
  double MaxAbsDiff(const Matrix& other) const;

  bool operator==(const Matrix& other) const;

  std::string ToString(int max_rows = 6, int max_cols = 8) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace carol::nn

#endif  // CAROL_NN_MATRIX_H_
