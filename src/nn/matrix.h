// Dense row-major matrix of doubles. This is the only tensor type in the
// from-scratch deep-learning substrate; the networks in the paper (128-unit
// feed-forward stacks, one graph-attention layer, small LSTMs) are small
// enough that a straightforward dense CPU implementation is faithful.
#ifndef CAROL_NN_MATRIX_H_
#define CAROL_NN_MATRIX_H_

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace carol::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  // Builds from nested initializer data; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> data);

  static Matrix Zeros(std::size_t rows, std::size_t cols);
  static Matrix Ones(std::size_t rows, std::size_t cols);
  static Matrix Identity(std::size_t n);
  // I.i.d. normal entries.
  static Matrix Randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                      double mean = 0.0, double stddev = 1.0);
  // Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
  static Matrix Xavier(std::size_t fan_in, std::size_t fan_out,
                       common::Rng& rng);
  // Wraps a flat row-major buffer.
  static Matrix FromFlat(std::size_t rows, std::size_t cols,
                         std::vector<double> flat);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;
  double& at(std::size_t r, std::size_t c);

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  // Elementwise arithmetic. Shapes must match exactly; throws
  // std::invalid_argument otherwise.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  // Hadamard (elementwise) product.
  Matrix Hadamard(const Matrix& other) const;
  // Standard matrix product; inner dimensions must agree.
  Matrix MatMul(const Matrix& other) const;
  Matrix Transposed() const;
  // Applies `fn` to every element, returning a new matrix.
  Matrix Map(const std::function<double(double)>& fn) const;

  // Appends the columns of `other` to the right; row counts must match.
  Matrix ConcatCols(const Matrix& other) const;
  // Stacks `other` below; column counts must match.
  Matrix ConcatRows(const Matrix& other) const;
  // Copies columns [c0, c1) into a new matrix.
  Matrix SliceCols(std::size_t c0, std::size_t c1) const;
  // Copies rows [r0, r1) into a new matrix.
  Matrix SliceRows(std::size_t r0, std::size_t r1) const;

  double Sum() const;
  double MeanValue() const;
  double MaxValue() const;
  double MinValue() const;
  // Frobenius norm.
  double Norm() const;
  // Mean over rows: returns a 1 x cols matrix.
  Matrix RowMean() const;
  // Sum over rows: returns a 1 x cols matrix.
  Matrix RowSum() const;

  void Fill(double value);
  // True if all entries are finite.
  bool AllFinite() const;
  // Max |a - b| over elements; shapes must match.
  double MaxAbsDiff(const Matrix& other) const;

  bool operator==(const Matrix& other) const;

  std::string ToString(int max_rows = 6, int max_cols = 8) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace carol::nn

#endif  // CAROL_NN_MATRIX_H_
