// A small reusable fork-join worker pool for data-parallel loops over
// independent work items (the H>=64 GAT attention hot path: K stacked
// per-state attention blocks share no state, so they fan out across
// threads without changing a single bit of the result).
//
// Design rules (see src/nn/README.md "Threaded batched inference"):
//   * ParallelFor partitions [0, n) into thread_count() contiguous
//     blocks; block t runs on thread index t (block 0 on the caller).
//     The partition depends only on (n, thread_count()), so a run is
//     deterministic for a fixed pool size.
//   * The pool adds NO synchronization around items: the callback must
//     only write state that is disjoint per item (e.g. distinct output
//     rows) or owned by its thread index (per-thread scratch slots).
//   * Bit-identity: every item is computed by exactly one thread with
//     the same kernels and the same per-item inputs as the sequential
//     loop, so results are independent of the thread count by
//     construction — the pool never splits or reorders the arithmetic
//     *within* an item.
//   * Exceptions thrown by the callback are captured and the FIRST one
//     is rethrown on the calling thread after every block finished.
#ifndef CAROL_NN_THREADING_H_
#define CAROL_NN_THREADING_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace carol::nn {

class WorkerPool {
 public:
  // `threads` is the TOTAL parallelism (caller thread included);
  // `threads - 1` helper threads are spawned. Values <= 1 create no
  // helpers and ParallelFor runs inline.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return static_cast<int>(helpers_.size()) + 1; }

  // Runs fn(begin, end, thread_index) for the contiguous block of items
  // assigned to each thread (block t is [t*chunk, min(n, (t+1)*chunk))
  // with chunk = ceil(n / thread_count())). Blocks until every item
  // completed; rethrows the first callback exception. NOT reentrant: a
  // pool must only ever be driven from one thread at a time, and fn must
  // not call back into the same pool.
  void ParallelFor(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, int)>& fn);

 private:
  void HelperLoop(int thread_index);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job (guarded by mu_): helpers pick it up when generation_
  // advances; pending_ counts helpers that have not finished their block.
  const std::function<void(std::size_t, std::size_t, int)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stopping_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> helpers_;
};

}  // namespace carol::nn

#endif  // CAROL_NN_THREADING_H_
