#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace carol::nn {

namespace {
void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch (" +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()) + " vs " +
                                std::to_string(b.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
  }
}
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> data) {
  rows_ = data.size();
  cols_ = rows_ == 0 ? 0 : data.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : data) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix Matrix::Ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0);
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                     double mean, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Normal(mean, stddev);
  return m;
}

Matrix Matrix::Xavier(std::size_t fan_in, std::size_t fan_out,
                      common::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix m(fan_in, fan_out);
  for (double& v : m.data_) v = rng.Uniform(-limit, limit);
  return m;
}

Matrix Matrix::FromFlat(std::size_t rows, std::size_t cols,
                        std::vector<double> flat) {
  if (flat.size() != rows * cols) {
    throw std::invalid_argument("FromFlat: buffer size mismatch");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  return std::span<double>(data_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  return std::span<const double>(data_).subspan(r * cols_, cols_);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CheckSameShape(*this, other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CheckSameShape(*this, other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  CheckSameShape(*this, other, "Hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] *= other.data_[i];
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument(
        "MatMul: inner dimension mismatch (" + std::to_string(rows_) + "x" +
        std::to_string(cols_) + " * " + std::to_string(other.rows_) + "x" +
        std::to_string(other.cols_) + ")");
  }
  Matrix out(rows_, other.cols_, 0.0);
  // ikj loop order for cache-friendly access of the row-major operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = data_[i * cols_ + k];
      if (aik == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::Map(const std::function<double(double)>& fn) const {
  Matrix out = *this;
  for (double& v : out.data_) v = fn(v);
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  if (rows_ != other.rows_) {
    throw std::invalid_argument("ConcatCols: row count mismatch");
  }
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy(row(r).begin(), row(r).end(), out.row(r).begin());
    std::copy(other.row(r).begin(), other.row(r).end(),
              out.row(r).begin() + static_cast<std::ptrdiff_t>(cols_));
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& other) const {
  if (cols_ != other.cols_) {
    throw std::invalid_argument("ConcatRows: column count mismatch");
  }
  Matrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(data_.size()));
  return out;
}

Matrix Matrix::SliceCols(std::size_t c0, std::size_t c1) const {
  if (c0 > c1 || c1 > cols_) {
    throw std::out_of_range("SliceCols: bad column range");
  }
  Matrix out(rows_, c1 - c0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = c0; c < c1; ++c) {
      out(r, c - c0) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::SliceRows(std::size_t r0, std::size_t r1) const {
  if (r0 > r1 || r1 > rows_) {
    throw std::out_of_range("SliceRows: bad row range");
  }
  Matrix out(r1 - r0, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_),
            out.data_.begin());
  return out;
}

double Matrix::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Matrix::MeanValue() const {
  return data_.empty() ? 0.0 : Sum() / static_cast<double>(data_.size());
}

double Matrix::MaxValue() const {
  return data_.empty() ? 0.0 : *std::max_element(data_.begin(), data_.end());
}

double Matrix::MinValue() const {
  return data_.empty() ? 0.0 : *std::min_element(data_.begin(), data_.end());
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::RowMean() const {
  Matrix out = RowSum();
  if (rows_ > 0) out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::RowSum() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(0, c) += (*this)(r, c);
    }
  }
  return out;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Matrix::AllFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return std::isfinite(v); });
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CheckSameShape(*this, other, "MaxAbsDiff");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  const std::size_t rlim = std::min<std::size_t>(rows_, max_rows);
  const std::size_t clim = std::min<std::size_t>(cols_, max_cols);
  for (std::size_t r = 0; r < rlim; ++r) {
    os << (r == 0 ? "[" : " [");
    for (std::size_t c = 0; c < clim; ++c) {
      os << (*this)(r, c);
      if (c + 1 < clim) os << ", ";
    }
    if (clim < cols_) os << ", ...";
    os << "]";
    if (r + 1 < rlim) os << "\n";
  }
  if (rlim < rows_) os << "\n ...";
  os << "]";
  return os.str();
}

}  // namespace carol::nn
