#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace carol::nn {

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch (" +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()) + " vs " +
                                std::to_string(b.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
  }
}

// Blocked i-k-j product kernel: out += a * b over the flat row-major
// buffers. k is consumed in index order within and across blocks, so the
// per-element accumulation order — and therefore the floating-point
// result — is identical to the unblocked i-k-j loop.
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

void MatMulAccumImpl(const double* a, const double* b, double* out,
                     std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t kb = 0; kb < k; kb += kBlockK) {
    const std::size_t kend = std::min(kb + kBlockK, k);
    for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
      const std::size_t jend = std::min(jb + kBlockJ, n);
      for (std::size_t i = 0; i < m; ++i) {
        const double* arow = a + i * k;
        double* orow = out + i * n;
        for (std::size_t kk = kb; kk < kend; ++kk) {
          const double aik = arow[kk];
          // ReLU activations make `a` ~half exact zeros on the GON hot
          // path; skipping preserves the result (modulo signed zeros).
          if (aik == 0.0) continue;
          const double* brow = b + kk * n;
          for (std::size_t j = jb; j < jend; ++j) {
            orow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> data) {
  rows_ = data.size();
  cols_ = rows_ == 0 ? 0 : data.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : data) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix Matrix::Ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0);
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                     double mean, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Normal(mean, stddev);
  return m;
}

Matrix Matrix::Xavier(std::size_t fan_in, std::size_t fan_out,
                      common::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix m(fan_in, fan_out);
  for (double& v : m.data_) v = rng.Uniform(-limit, limit);
  return m;
}

Matrix Matrix::FromFlat(std::size_t rows, std::size_t cols,
                        std::vector<double> flat) {
  if (flat.size() != rows * cols) {
    throw std::invalid_argument("FromFlat: buffer size mismatch");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  return std::span<double>(data_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  return std::span<const double>(data_).subspan(r * cols_, cols_);
}

void Matrix::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::AssignZeros(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::CopyFrom(const Matrix& src) {
  rows_ = src.rows_;
  cols_ = src.cols_;
  data_.assign(src.data_.begin(), src.data_.end());
}

void Matrix::CopyRowsFrom(const Matrix& src, std::size_t r0,
                          std::size_t r1) {
  if (r0 > r1 || r1 > src.rows_) {
    throw std::out_of_range("CopyRowsFrom: bad row range");
  }
  rows_ = r1 - r0;
  cols_ = src.cols_;
  data_.assign(src.data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
               src.data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_));
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  CheckSameShape(*this, other, "AddInPlace");
  const double* src = other.data_.data();
  double* dst = data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
  return *this;
}

Matrix& Matrix::MulAddInPlace(const Matrix& other, double s) {
  CheckSameShape(*this, other, "MulAddInPlace");
  const double* src = other.data_.data();
  double* dst = data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i] * s;
  return *this;
}

Matrix& Matrix::HadamardInPlace(const Matrix& other) {
  CheckSameShape(*this, other, "HadamardInPlace");
  const double* src = other.data_.data();
  double* dst = data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] *= src[i];
  return *this;
}

Matrix& Matrix::HadamardAccum(const Matrix& a, const Matrix& b) {
  CheckSameShape(*this, a, "HadamardAccum");
  CheckSameShape(a, b, "HadamardAccum");
  const double* pa = a.data_.data();
  const double* pb = b.data_.data();
  double* dst = data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += pa[i] * pb[i];
  return *this;
}

Matrix& Matrix::AddColumnSums(const Matrix& src) {
  if (rows_ != 1 || cols_ != src.cols_) {
    throw std::invalid_argument("AddColumnSums: target must be 1 x cols");
  }
  double* dst = data_.data();
  for (std::size_t r = 0; r < src.rows_; ++r) {
    const double* srow = src.data_.data() + r * src.cols_;
    for (std::size_t c = 0; c < src.cols_; ++c) dst[c] += srow[c];
  }
  return *this;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CheckSameShape(*this, other, "operator+=");
  return AddInPlace(other);
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CheckSameShape(*this, other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  CheckSameShape(*this, other, "Hadamard");
  Matrix out = *this;
  out.HadamardInPlace(other);
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(*this, other, out);
  return out;
}

void Matrix::MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols_ != b.rows_) {
    throw std::invalid_argument(
        "MatMul: inner dimension mismatch (" + std::to_string(a.rows_) +
        "x" + std::to_string(a.cols_) + " * " + std::to_string(b.rows_) +
        "x" + std::to_string(b.cols_) + ")");
  }
  if (&out == &a || &out == &b) {
    throw std::invalid_argument("MatMulInto: out aliases an operand");
  }
  out.AssignZeros(a.rows_, b.cols_);
  MatMulAccumImpl(a.data_.data(), b.data_.data(), out.data_.data(),
                  a.rows_, a.cols_, b.cols_);
}

void Matrix::MatMulAccum(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols_ != b.rows_ || out.rows_ != a.rows_ || out.cols_ != b.cols_) {
    throw std::invalid_argument("MatMulAccum: shape mismatch");
  }
  if (&out == &a || &out == &b) {
    throw std::invalid_argument("MatMulAccum: out aliases an operand");
  }
  MatMulAccumImpl(a.data_.data(), b.data_.data(), out.data_.data(),
                  a.rows_, a.cols_, b.cols_);
}

void Matrix::MatMulTransAAccum(const Matrix& a, const Matrix& b,
                               Matrix& out) {
  // out[t][j] += sum_i a[i][t] * b[i][j]; a [m x k], b [m x n].
  if (a.rows_ != b.rows_ || out.rows_ != a.cols_ || out.cols_ != b.cols_) {
    throw std::invalid_argument("MatMulTransAAccum: shape mismatch");
  }
  if (&out == &a || &out == &b) {
    throw std::invalid_argument("MatMulTransAAccum: out aliases an operand");
  }
  const std::size_t m = a.rows_, k = a.cols_, n = b.cols_;
  const double* pa = a.data_.data();
  const double* pb = b.data_.data();
  double* po = out.data_.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = pa + i * k;
    const double* brow = pb + i * n;
    for (std::size_t t = 0; t < k; ++t) {
      const double a_it = arow[t];
      if (a_it == 0.0) continue;  // ReLU sparsity (see MatMulAccumImpl)
      double* orow = po + t * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += a_it * brow[j];
    }
  }
}

Matrix Matrix::Transposed() const {
  Matrix out;
  TransposeInto(*this, out);
  return out;
}

void Matrix::TransposeInto(const Matrix& src, Matrix& out) {
  if (&out == &src) {
    throw std::invalid_argument("TransposeInto: out aliases src");
  }
  out.Resize(src.cols_, src.rows_);
  for (std::size_t r = 0; r < src.rows_; ++r) {
    const double* srow = src.data_.data() + r * src.cols_;
    for (std::size_t c = 0; c < src.cols_; ++c) {
      out.data_[c * src.rows_ + r] = srow[c];
    }
  }
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  if (rows_ != other.rows_) {
    throw std::invalid_argument("ConcatCols: row count mismatch");
  }
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy(row(r).begin(), row(r).end(), out.row(r).begin());
    std::copy(other.row(r).begin(), other.row(r).end(),
              out.row(r).begin() + static_cast<std::ptrdiff_t>(cols_));
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& other) const {
  if (cols_ != other.cols_) {
    throw std::invalid_argument("ConcatRows: column count mismatch");
  }
  Matrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(data_.size()));
  return out;
}

Matrix Matrix::SliceCols(std::size_t c0, std::size_t c1) const {
  if (c0 > c1 || c1 > cols_) {
    throw std::out_of_range("SliceCols: bad column range");
  }
  Matrix out(rows_, c1 - c0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = c0; c < c1; ++c) {
      out(r, c - c0) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::SliceRows(std::size_t r0, std::size_t r1) const {
  Matrix out;
  out.CopyRowsFrom(*this, r0, r1);
  return out;
}

double Matrix::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Matrix::MeanValue() const {
  return data_.empty() ? 0.0 : Sum() / static_cast<double>(data_.size());
}

double Matrix::MaxValue() const {
  return data_.empty() ? 0.0 : *std::max_element(data_.begin(), data_.end());
}

double Matrix::MinValue() const {
  return data_.empty() ? 0.0 : *std::min_element(data_.begin(), data_.end());
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::RowMean() const {
  Matrix out = RowSum();
  if (rows_ > 0) out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::RowSum() const {
  Matrix out(1, cols_, 0.0);
  out.AddColumnSums(*this);
  return out;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Matrix::AllFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return std::isfinite(v); });
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CheckSameShape(*this, other, "MaxAbsDiff");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  const std::size_t rlim = std::min<std::size_t>(rows_, max_rows);
  const std::size_t clim = std::min<std::size_t>(cols_, max_cols);
  for (std::size_t r = 0; r < rlim; ++r) {
    os << (r == 0 ? "[" : " [");
    for (std::size_t c = 0; c < clim; ++c) {
      os << (*this)(r, c);
      if (c + 1 < clim) os << ", ";
    }
    if (clim < cols_) os << ", ...";
    os << "]";
    if (r + 1 < rlim) os << "\n";
  }
  if (rlim < rows_) os << "\n ...";
  os << "]";
  return os.str();
}

}  // namespace carol::nn
