// Neural-network building blocks used by the CAROL GON discriminator
// (Figure 3 of the paper: feed-forward encoders + one graph-attention layer
// + sigmoid head) and by the learned baselines (LSTM/VAE for TopoMAD, GAN
// for StepGAN and the With-GAN ablation, recurrent surrogate for FRAS).
#ifndef CAROL_NN_LAYERS_H_
#define CAROL_NN_LAYERS_H_

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "nn/threading.h"

namespace carol::nn {

// A trainable tensor. Gradients are accumulated here (across a whole
// minibatch graph) by Module::CollectGrads after Tape::Backward.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter(std::string n, Matrix v)
      : name(std::move(n)),
        value(std::move(v)),
        grad(Matrix::Zeros(value.rows(), value.cols())) {}

  std::size_t size() const { return value.size(); }
};

// Base class for anything that owns Parameters. Forward passes bind
// parameters as tape leaves; after Backward, CollectGrads moves the leaf
// gradients into Parameter::grad (summing across all bindings made since
// the last ClearBindings, i.e. across a minibatch).
class Module {
 public:
  virtual ~Module() = default;

  virtual std::vector<Parameter*> Parameters() = 0;

  // Composite modules (Mlp, the GON network, ...) MUST expose their
  // sub-modules here: forward passes record parameter->leaf bindings on
  // the sub-module that owns the parameter, and CollectGrads /
  // ClearBindings traverse the module tree to reach them.
  virtual std::vector<Module*> Children() { return {}; }

  // Total number of scalar parameters.
  std::size_t ParameterCount();
  // Parameter memory in megabytes (doubles), used by the analytic memory
  // model of Fig. 5(e).
  double ParameterMegabytes();

  void ZeroGrad();
  // Sums leaf grads recorded during forward passes into Parameter::grad,
  // recursively over the module tree.
  void CollectGrads();
  // Must be called whenever a new tape is started (bindings reference the
  // previous tape's nodes). Recursive.
  void ClearBindings();
  // Frozen modules bind parameters as constants (no gradient, no
  // binding record): forward passes whose backward only needs input
  // gradients — the GON input-space ascent — skip every dW/db
  // accumulation. Recursive over the module tree.
  void SetFrozen(bool frozen);
  bool frozen() const { return frozen_; }

 protected:
  // Binds `param` as a requires-grad leaf on `tape` and records the
  // binding for CollectGrads (constant leaf, no record, when frozen).
  Value Bind(Tape& tape, Parameter& param);

 private:
  std::vector<std::pair<Parameter*, Value>> bindings_;
  bool frozen_ = false;
};

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

// Applies an activation as a tape op.
Value Activate(Tape& tape, Value x, Activation act);

// Maps a layer activation onto the fused tape-op activation kind.
FusedAct ToFusedAct(Activation act);

// Fully connected layer: y = act(x W + b), x is [N x in].
// By default this emits ONE fused Linear tape node per forward; the
// unfused three-node form (MatMul + AddRowBroadcast + activation) is kept
// behind set_fused(false) as the A/B reference for benches.
class Dense : public Module {
 public:
  Dense(std::size_t in, std::size_t out, common::Rng& rng,
        std::string name = "dense", Activation act = Activation::kNone);

  Value Forward(Tape& tape, Value x);
  std::vector<Parameter*> Parameters() override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  Activation activation() const { return act_; }
  void set_fused(bool fused) { fused_ = fused; }

  // Tape-free forward into a caller-owned buffer (inference hot path);
  // uses the same LinearForward kernel as the fused tape op, so the
  // values are identical to Forward's.
  void ForwardInference(const Matrix& x, Matrix& out) const;

 private:
  std::size_t in_;
  std::size_t out_;
  Activation act_;
  bool fused_ = true;
  Parameter w_;
  Parameter b_;
};

// Multi-layer perceptron with ReLU hidden activations and a configurable
// output activation. `dims` is {in, h1, ..., out}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<std::size_t>& dims, common::Rng& rng,
      std::string name = "mlp", Activation output_act = Activation::kNone,
      Activation hidden_act = Activation::kRelu);

  Value Forward(Tape& tape, Value x);
  std::vector<Parameter*> Parameters() override;
  std::vector<Module*> Children() override;
  std::size_t depth() const { return layers_.size(); }
  // Propagates to every layer (bench A/B knob; fused is the default).
  void set_fused(bool fused);

  // Tape-free forward for inference hot paths. `scratch` supplies two
  // recycled ping-pong buffers (grown on demand); the returned reference
  // points into `scratch` and stays valid until the next call.
  const Matrix& ForwardInference(const Matrix& x,
                                 std::array<Matrix, 2>& scratch) const;

 private:
  std::vector<Dense> layers_;
};

// Graph attention layer (Velickovic et al., Eq. (4) of the paper).
// Input: per-node features u [H x in] and a 0/1 adjacency matrix [H x H].
// Self-loops are added internally. Output: e [H x out], computed as
//   h_j = tanh(u_j W + b)
//   a_ij = softmax_{j in n(i)} ((h_i Wq) . h_j)
//   e_i  = sigma( sum_j a_ij h_j )
// which keeps the computation agnostic to the number of hosts, the paper's
// stated motivation for the GAT branch.
class GraphAttention : public Module {
 public:
  GraphAttention(std::size_t in, std::size_t out, common::Rng& rng,
                 std::string name = "gat");

  Value Forward(Tape& tape, Value u, const Matrix& adjacency);
  // Batched forward over K stacked states: `u` is [K*H x in] (H = rows of
  // each adjacency) and `adjacencies` has one H x H entry per state.
  // The shared linear/query projections run as ONE kernel over all K*H
  // rows; attention stays per-state (cross-state attention is impossible
  // by construction, matching K independent Forward calls bit-for-bit).
  // Returns the stacked embeddings [K*H x out].
  Value ForwardBatch(Tape& tape, Value u,
                     std::span<const Matrix* const> adjacencies);
  std::vector<Parameter*> Parameters() override;
  void set_fused(bool fused) { fused_ = fused; }

  // Recycled buffers for ForwardInferenceBatch. One Slot per pool thread
  // (slot 0 doubles as the sequential path's scratch); a Slot is only
  // ever touched by the thread whose index it carries, which is what
  // keeps the threaded path race-free without any per-state locking.
  struct InferenceScratch {
    struct Slot {
      Matrix u_s, hidden, query, hid_s, ht_s, q_s, scores, mask, attn, e_s;
    };
    std::vector<Slot> slots;
    // Grows (never shrinks) to at least `count` slots; existing slots
    // keep their buffers. Call before a parallel region — growing the
    // vector inside one would race.
    void EnsureSlots(std::size_t count) {
      if (slots.size() < count) slots.resize(count);
    }
  };
  // Tape-free batched forward mirroring ForwardBatch; writes the stacked
  // embeddings [K*H x out] into `out`. Kernel-for-kernel identical to the
  // tape path. With a `pool`, the K per-state attention blocks (and the
  // shared projections, row-partitioned by state block) fan out across
  // the pool's threads; results are bit-identical to the sequential path
  // for any thread count (see src/nn/README.md).
  void ForwardInferenceBatch(const Matrix& u,
                             std::span<const Matrix* const> adjacencies,
                             InferenceScratch& ws, Matrix& out,
                             WorkerPool* pool = nullptr) const;

 private:
  std::size_t in_;
  std::size_t out_;
  bool fused_ = true;
  Parameter w_;
  Parameter b_;
  Parameter wq_;
};

// Standard LSTM cell; state is a pair of [N x hidden] values. Used by the
// TopoMAD (LSTM+VAE) and FRAS (recurrent surrogate) baselines.
class LstmCell : public Module {
 public:
  LstmCell(std::size_t in, std::size_t hidden, common::Rng& rng,
           std::string name = "lstm");

  struct State {
    Value h;
    Value c;
  };

  State InitialState(Tape& tape, std::size_t batch_rows);
  State Forward(Tape& tape, Value x, const State& prev);
  std::vector<Parameter*> Parameters() override;
  std::size_t hidden_size() const { return hidden_; }

 private:
  std::size_t in_;
  std::size_t hidden_;
  Parameter wx_;  // [in x 4*hidden]
  Parameter wh_;  // [hidden x 4*hidden]
  Parameter b_;   // [1 x 4*hidden]
};

// --- common losses (built from tape ops) ---

// Mean squared error between pred and a constant target.
Value MseLoss(Tape& tape, Value pred, const Matrix& target);

// Binary cross-entropy pieces used by Algorithm 1:
//   L = -[ log D(real) + log(1 - D(fake)) ]
// `d_real` / `d_fake` are 1x1 discriminator outputs in (0,1).
Value GanDiscriminatorLoss(Tape& tape, Value d_real, Value d_fake);

}  // namespace carol::nn

#endif  // CAROL_NN_LAYERS_H_
