// Deterministic random number generation utilities shared by the simulator,
// the workload generators and the neural-network substrate.
//
// All stochastic components of the reproduction draw from an explicitly
// seeded Rng so that every experiment in bench/ is reproducible from its
// seed alone.
#ifndef CAROL_COMMON_RNG_H_
#define CAROL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace carol::common {

// A seeded pseudo-random generator with the distributions used across the
// codebase. Cheap to copy; copies continue the sequence independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  // Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  // Standard normal N(mean, stddev).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Poisson-distributed count with the given rate.
  int Poisson(double rate);

  // Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  // Exponentially distributed value with the given rate (lambda).
  double Exponential(double rate);

  // Returns an index in [0, weights.size()) drawn proportionally to
  // `weights`. Throws std::invalid_argument if weights are empty or all
  // non-positive.
  std::size_t WeightedChoice(std::span<const double> weights);

  // Returns a uniformly chosen element index for a container of `n` items.
  std::size_t Choice(std::size_t n);

  // Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

  // Derives an independent child generator; use to give subsystems their
  // own streams so that adding draws in one does not perturb another.
  Rng Fork();

  // Exact stream capture/restore. The engine is the generator's ONLY
  // state (every distribution object is constructed per call), so
  // std::mt19937_64's stream operators serialize it completely: a
  // restored Rng produces bit-identical draws to the original from the
  // capture point on. Used by the serving layer's session snapshots.
  std::string SaveState() const;
  // Throws std::invalid_argument when `state` is not a SaveState string.
  void LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace carol::common

#endif  // CAROL_COMMON_RNG_H_
