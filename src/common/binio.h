// Minimal binary stream (de)serialization substrate for the snapshot
// formats (nn weight checkpoints, service session snapshots).
//
// Encoding rules, chosen for exactness and portability across runs:
//   * integers are fixed-width little-endian;
//   * doubles are the raw IEEE-754 bit pattern (as a little-endian
//     u64) — round-trips are bit-exact by construction, which the
//     snapshot/restore bit-identity guarantee rests on;
//   * strings and arrays are length-prefixed (u64 count, then payload);
//   * every versioned section starts with Header(tag, version) so a
//     reader can reject foreign or future files with a typed error
//     instead of misparsing them.
#ifndef CAROL_COMMON_BINIO_H_
#define CAROL_COMMON_BINIO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace carol::common {

// Thrown on any malformed/truncated/foreign input during binary reads.
class BinaryFormatError : public std::runtime_error {
 public:
  explicit BinaryFormatError(const std::string& what)
      : std::runtime_error("BinaryFormatError: " + what) {}
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(&out) {}

  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Fixed<std::uint32_t>(v); }
  void U64(std::uint64_t v) { Fixed<std::uint64_t>(v); }
  void I32(std::int32_t v) { Fixed<std::uint32_t>(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { Fixed<std::uint64_t>(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  // Raw IEEE-754 bit pattern: the round-trip is bit-exact.
  void F64(double v) { Fixed<std::uint64_t>(std::bit_cast<std::uint64_t>(v)); }

  void String(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Doubles(std::span<const double> values) {
    U64(values.size());
    for (double v : values) F64(v);
  }
  template <typename Int>
  void Ints(const std::vector<Int>& values) {
    U64(values.size());
    for (Int v : values) I64(static_cast<std::int64_t>(v));
  }
  void Bools(const std::vector<bool>& values) {
    U64(values.size());
    for (bool v : values) Bool(v);
  }

  // Versioned section header: magic tag + format version.
  void Header(const std::string& tag, std::uint32_t version) {
    String(tag);
    U32(version);
  }

  void CheckOk(const std::string& context) const {
    if (!*out_) throw std::runtime_error(context + ": write failed");
  }

 private:
  template <typename Uint>
  void Fixed(Uint v) {
    std::uint8_t bytes[sizeof(Uint)];
    for (std::size_t i = 0; i < sizeof(Uint); ++i) {
      bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    Raw(bytes, sizeof(Uint));
  }
  void Raw(const void* data, std::size_t n) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(n));
  }

  std::ostream* out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(&in) {}

  std::uint8_t U8() {
    std::uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  std::uint32_t U32() { return Fixed<std::uint32_t>(); }
  std::uint64_t U64() { return Fixed<std::uint64_t>(); }
  std::int32_t I32() { return static_cast<std::int32_t>(Fixed<std::uint32_t>()); }
  std::int64_t I64() { return static_cast<std::int64_t>(Fixed<std::uint64_t>()); }
  bool Bool() { return U8() != 0; }
  double F64() { return std::bit_cast<double>(Fixed<std::uint64_t>()); }

  std::string String() {
    const std::uint64_t n = BoundedCount(U64());
    std::string s(static_cast<std::size_t>(n), '\0');
    Raw(s.data(), s.size());
    return s;
  }
  std::vector<double> Doubles() {
    const std::uint64_t n = BoundedCount(U64());
    std::vector<double> values(static_cast<std::size_t>(n));
    for (double& v : values) v = F64();
    return values;
  }
  template <typename Int>
  std::vector<Int> Ints() {
    const std::uint64_t n = BoundedCount(U64());
    std::vector<Int> values(static_cast<std::size_t>(n));
    for (Int& v : values) v = static_cast<Int>(I64());
    return values;
  }
  std::vector<bool> Bools() {
    const std::uint64_t n = BoundedCount(U64());
    std::vector<bool> values(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < values.size(); ++i) values[i] = Bool();
    return values;
  }

  // Reads a section header; throws BinaryFormatError unless the tag
  // matches and the version is in [1, max_version]. Returns the version
  // so readers can branch on older formats.
  std::uint32_t Header(const std::string& tag, std::uint32_t max_version) {
    const std::string got = String();
    if (got != tag) {
      throw BinaryFormatError("expected section '" + tag + "', found '" +
                              got + "'");
    }
    const std::uint32_t version = U32();
    if (version < 1 || version > max_version) {
      throw BinaryFormatError("section '" + tag + "': unsupported version " +
                              std::to_string(version));
    }
    return version;
  }

 private:
  template <typename Uint>
  Uint Fixed() {
    std::uint8_t bytes[sizeof(Uint)];
    Raw(bytes, sizeof(Uint));
    Uint v = 0;
    for (std::size_t i = 0; i < sizeof(Uint); ++i) {
      v |= static_cast<Uint>(bytes[i]) << (8 * i);
    }
    return v;
  }
  void Raw(void* data, std::size_t n) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_->gcount()) != n) {
      throw BinaryFormatError("truncated input");
    }
  }
  // Sanity bound on length prefixes so a corrupt count cannot drive a
  // multi-gigabyte allocation before the truncation check trips.
  static std::uint64_t BoundedCount(std::uint64_t n) {
    if (n > (1ull << 32)) {
      throw BinaryFormatError("implausible element count " +
                              std::to_string(n));
    }
    return n;
  }

  std::istream* in_;
};

}  // namespace carol::common

#endif  // CAROL_COMMON_BINIO_H_
