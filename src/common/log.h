// Lightweight leveled logging. The bench binaries set the level from the
// CAROL_LOG environment variable (error|warn|info|debug); default is warn so
// experiment output stays clean.
#ifndef CAROL_COMMON_LOG_H_
#define CAROL_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace carol::common {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Global log level; not thread-safe to mutate concurrently with logging,
// set it once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Reads CAROL_LOG from the environment and applies it; unknown values keep
// the default.
void InitLogLevelFromEnv();

// Writes a single formatted line to stderr if `level` is enabled.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

inline internal::LogStream LogError() {
  return internal::LogStream(LogLevel::kError);
}
inline internal::LogStream LogWarn() {
  return internal::LogStream(LogLevel::kWarn);
}
inline internal::LogStream LogInfo() {
  return internal::LogStream(LogLevel::kInfo);
}
inline internal::LogStream LogDebug() {
  return internal::LogStream(LogLevel::kDebug);
}

}  // namespace carol::common

#endif  // CAROL_COMMON_LOG_H_
