#include "common/log.h"

#include <cstdlib>
#include <iostream>

namespace carol::common {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void InitLogLevelFromEnv() {
  const char* env = std::getenv("CAROL_LOG");
  if (env == nullptr) return;
  const std::string value(env);
  if (value == "error") {
    g_level = LogLevel::kError;
  } else if (value == "warn") {
    g_level = LogLevel::kWarn;
  } else if (value == "info") {
    g_level = LogLevel::kInfo;
  } else if (value == "debug") {
    g_level = LogLevel::kDebug;
  }
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::cerr << "[" << LevelName(level) << "] " << message << '\n';
}

}  // namespace carol::common
