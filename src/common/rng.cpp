#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>

namespace carol::common {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::Poisson(double rate) {
  if (rate <= 0.0) return 0;
  std::poisson_distribution<int> dist(rate);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

std::size_t Rng::WeightedChoice(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("WeightedChoice: empty weights");
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("WeightedChoice: weights sum to <= 0");
  }
  double r = Uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

std::size_t Rng::Choice(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Choice: n must be > 0");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

Rng Rng::Fork() {
  std::uniform_int_distribution<std::uint64_t> dist;
  return Rng(dist(engine_));
}

std::string Rng::SaveState() const {
  // The standard guarantees operator<< / operator>> round-trip the full
  // engine state exactly (19937 bits + position, as decimal words).
  std::ostringstream out;
  out << engine_;
  return out.str();
}

void Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 engine;
  in >> engine;
  if (in.fail()) {
    throw std::invalid_argument("Rng::LoadState: malformed engine state");
  }
  engine_ = engine;
}

}  // namespace carol::common
