// Streaming and batch statistics used by the metrics pipeline, the POT
// thresholder and the experiment harness.
#ifndef CAROL_COMMON_STATS_H_
#define CAROL_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace carol::common {

// Welford online mean/variance accumulator. Numerically stable; O(1) space.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average with configurable smoothing factor.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  void Add(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Linear-interpolation percentile of a sample (p in [0,100]).
// Returns 0 for an empty sample.
double Percentile(std::span<const double> values, double p);

// Arithmetic mean; 0 for an empty sample.
double Mean(std::span<const double> values);

// Sample standard deviation; 0 for fewer than two samples.
double Stddev(std::span<const double> values);

// Min-max normalization of a vector into [0,1]; constant vectors map to 0.5.
std::vector<double> MinMaxNormalize(std::span<const double> values);

}  // namespace carol::common

#endif  // CAROL_COMMON_STATS_H_
