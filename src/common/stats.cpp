#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace carol::common {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ema::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

std::vector<double> MinMaxNormalize(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  if (out.empty()) return out;
  const auto [mn_it, mx_it] = std::minmax_element(out.begin(), out.end());
  const double mn = *mn_it;
  const double range = *mx_it - mn;
  if (range <= 0.0) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (double& v : out) v = (v - mn) / range;
  return out;
}

}  // namespace carol::common
