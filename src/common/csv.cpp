#include "common/csv.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace carol::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  // Full round-trip precision: schedules and traces written here must
  // read back bit-exactly (max_digits10 guarantees that for doubles).
  out_.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << header[i];
    if (i + 1 < header.size()) out_ << ',';
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& row) {
  if (row.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    out_ << row[i];
    if (i + 1 < row.size()) out_ << ',';
  }
  out_ << '\n';
}

CsvTable ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadCsv: cannot open " + path);
  }
  CsvTable table;
  std::string line;
  if (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table.header.push_back(cell);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw std::runtime_error("ReadCsv: malformed cell '" + cell + "'");
      }
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace carol::common
