// Minimal CSV writer/reader used to persist training traces (the dataset
// Lambda of Algorithm 1) and experiment series for the bench harness.
#ifndef CAROL_COMMON_CSV_H_
#define CAROL_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace carol::common {

// Appends rows of doubles under a fixed header. The writer owns the stream
// and flushes on destruction (RAII).
class CsvWriter {
 public:
  // Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void WriteRow(const std::vector<double>& row);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

// Reads a CSV file of doubles produced by CsvWriter.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

// Throws std::runtime_error on missing file or malformed numeric cell.
CsvTable ReadCsv(const std::string& path);

}  // namespace carol::common

#endif  // CAROL_COMMON_CSV_H_
