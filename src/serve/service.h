// Multi-tenant resilience serving (the ROADMAP's multi-federation
// sharding item): one ResilienceService owns N concurrent federation
// *sessions* and a sharded pool of GON worker replicas, replacing the
// implicit "one model object == one federation" contract of the
// single-model path.
//
// Architecture:
//   * Sessions hold the per-federation controller state (feature
//     encoder, POT confidence gate, running dataset Gamma, repair rng).
//     They are cheap; the expensive state — the GON surrogate — is
//     shared by every session.
//   * Workers each own a full GonModel replica (GonModel is not
//     thread-safe; see src/core/gon.h). Replicas are architecturally
//     identical clones of a master model: initial weights coincide by
//     seeded construction, and after a confidence-triggered fine-tune on
//     the master the new weights are re-broadcast lazily via an epoch
//     check + nn::CopyParameters before a replica serves its next step.
//   * Repairs run as resumable pipelines (core::RepairJob) over an
//     event-driven step scheduler: a worker executes one pipeline step,
//     the step deposits the session's candidate frontier into a shared
//     pending-score pool, and whichever worker next runs out of compute
//     steps flushes the WHOLE pool as stacked GenerateBatch passes
//     (bucketed by host count inside the GON). Frontiers from N
//     concurrently-repairing sessions therefore share kernel passes with
//     ZERO linger: nothing ever waits on a wall clock, a session's next
//     step is scheduled the moment its scores return.
//   * The legacy run-to-completion path (ServiceConfig::pipeline =
//     false) serves each request on one worker; there, the linger-based
//     cross-session ScoreBatcher is the only way to stack.
//
// Determinism: repair planning runs the same core::RepairJob /
// ScoreTopologiesWith code as CarolModel with per-session rng streams,
// and batched GON passes are exactly equal to sequential ones, so the
// topology decisions of a session are bit-identical to a single
// CarolModel driven with the same inputs — independent of worker count,
// pipeline step interleaving and batch composition. The one caveat is
// weight mutation: fine-tunes from concurrent sessions interleave
// nondeterministically because the surrogate is shared (see
// src/serve/README.md).
#ifndef CAROL_SERVE_SERVICE_H_
#define CAROL_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/carol.h"
#include "core/resilience.h"

namespace carol::serve {

using SessionId = std::uint64_t;

// Typed admission-control rejection: thrown by Repair/Observe when the
// service already holds ServiceConfig::max_pending_requests admitted
// (queued or in-flight) requests. Callers distinguish overload from the
// generic shutdown std::runtime_error and may retry with backoff.
class ServiceOverloadedError : public std::runtime_error {
 public:
  explicit ServiceOverloadedError(std::size_t limit)
      : std::runtime_error(
            "ResilienceService: request rejected, " +
            std::to_string(limit) + " requests already pending"),
        limit_(limit) {}
  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
};

// Per-federation serving contract. The nested `carol.gon` sub-config is
// ignored: sessions share the service's surrogate (ServiceConfig::gon).
struct FederationSpec {
  std::string name = "federation";
  core::CarolConfig carol;
};

struct ServiceConfig {
  // The shared surrogate: master + one replica per worker are all built
  // from this config (same seed => identical initial weights).
  core::GonConfig gon;
  // Worker shards. Each owns a GonModel replica and serves any session.
  int num_workers = 4;
  // Step-driven repair pipeline (the default): repairs run as resumable
  // core::RepairJobs over an event-driven scheduler, and concurrent
  // sessions' frontiers stack into shared kernel passes with zero
  // linger. When false, the legacy run-to-completion path serves each
  // request on one worker and `batch_linger_us` governs stacking.
  // Requires cross_session_batching: stacking is the pipeline's whole
  // point, so with batching disabled requests run to completion on one
  // worker (legacy execution) regardless of this flag.
  bool pipeline = true;
  // Stack candidate-scoring jobs from concurrently repairing sessions
  // into shared kernel passes (bucketed by host count). Disabling this
  // also disables the pipeline scheduler (see `pipeline` above): every
  // frontier then scores directly on its request's own worker and the
  // pipeline_* stats stay zero.
  bool cross_session_batching = true;
  // LEGACY (pipeline == false): cap on jobs combined into one batched
  // scoring pass by the linger batcher. The pipeline scheduler flushes
  // everything pending instead.
  std::size_t max_batch_jobs = 8;
  // LEGACY fallback (pipeline == false only): how long a scoring job
  // lingers in the batcher queue waiting for passengers from other
  // sessions before its submitter claims it. 0 (the default) is
  // latency-first and bypasses the batcher entirely, so the legacy path
  // then never stacks. The pipeline path ignores this knob — stacking
  // comes from scheduling, not from waiting — and is the supported way
  // to get cross-session batching without a latency trade.
  int batch_linger_us = 0;
  // Per-replica attention threading for large federations (H >= 64):
  // every worker's GON replica fans the per-state GAT attention of its
  // batched scoring passes across this many threads. Overrides
  // gon.attention_threads when > 1. The master gets NO pool — it only
  // trains/fine-tunes/saves, which never runs the tape-free threaded
  // path. Total compute threads is roughly num_workers *
  // attention_threads — size the product to the machine. Decisions stay
  // bit-identical for any value (threading partitions work, never
  // arithmetic; see src/nn/README.md).
  int attention_threads = 1;
  // Admission control (backpressure): maximum number of admitted-but-
  // unfinished requests — queued plus in flight, across all sessions.
  // 0 = unbounded (the historical behavior). When the bound is hit,
  // Repair/Observe reject immediately with ServiceOverloadedError
  // instead of growing the queue without limit.
  std::size_t max_pending_requests = 0;
};

struct RepairRequest {
  sim::Topology current;
  std::vector<sim::NodeId> failed_brokers;
  sim::SystemSnapshot snapshot;
};

struct RepairResponse {
  sim::Topology topology;
  // D(M_t, S_t, G_repaired): the surrogate's confidence in the tuple
  // under the returned topology.
  double confidence = 0.0;
  // Service-side decision latency (planning + confidence), the paper's
  // headline per-interval metric.
  std::int64_t decision_ns = 0;
};

struct ObserveRequest {
  sim::SystemSnapshot snapshot;
};

struct ObserveResponse {
  double confidence = 0.0;
  double threshold = 0.0;
  bool fine_tuned = false;
  std::int64_t observe_ns = 0;
};

struct ServiceStats {
  std::uint64_t repairs = 0;
  std::uint64_t observes = 0;
  std::uint64_t finetunes = 0;
  // Proactive (no-failure) re-optimizations across all sessions.
  std::uint64_t proactive_optimizations = 0;
  // LEGACY linger batcher: batched scoring passes run, and how many jobs
  // shared a pass with at least one other job.
  std::uint64_t score_batches = 0;
  std::uint64_t stacked_jobs = 0;
  // Pipeline scheduler: GON generation kernel passes flushed from the
  // pending-score pool, the frontier jobs they carried, and the total
  // candidate states scored. The cross-session *stacking ratio* is
  // pipeline_jobs / pipeline_passes — 1.0 means every pass carried a
  // single session's frontier, 2.0 means two sessions shared each pass
  // on average (see src/serve/README.md).
  std::uint64_t pipeline_passes = 0;
  std::uint64_t pipeline_jobs = 0;
  std::uint64_t pipeline_states = 0;
  // Final per-decision confidence scoring, stacked into the same flush
  // pass: Discriminate kernel passes run (one per H bucket per flush)
  // and the decisions they scored. confidence_jobs > confidence_passes
  // means concurrent decisions shared confidence kernels — the
  // confidence gate no longer issues lone per-decision kernel calls.
  std::uint64_t confidence_passes = 0;
  std::uint64_t confidence_jobs = 0;
  std::uint64_t weight_epoch = 0;
};

class ResilienceService {
 public:
  explicit ResilienceService(const ServiceConfig& config);
  ~ResilienceService();

  ResilienceService(const ResilienceService&) = delete;
  ResilienceService& operator=(const ResilienceService&) = delete;

  // --- session lifecycle -----------------------------------------------
  SessionId OpenSession(const FederationSpec& spec);
  void CloseSession(SessionId id);
  std::size_t session_count() const;

  // --- the decision API ------------------------------------------------
  // Both calls block until the request has been served. Calls for the
  // SAME session are serialized internally; issue them from one client
  // thread per session if request order matters.
  RepairResponse Repair(SessionId id, const RepairRequest& request);
  ObserveResponse Observe(SessionId id, const ObserveRequest& request);
  // Zero-copy overloads (SessionModel's per-interval hot path): the
  // arguments are borrowed for the duration of the blocking call.
  RepairResponse Repair(SessionId id, const sim::Topology& current,
                        const std::vector<sim::NodeId>& failed_brokers,
                        const sim::SystemSnapshot& snapshot);
  ObserveResponse Observe(SessionId id,
                          const sim::SystemSnapshot& snapshot);

  // --- shared-surrogate management -------------------------------------
  // Offline-trains the master on the trace Lambda and broadcasts the new
  // weights. Call before opening traffic (it blocks the master).
  std::vector<core::EpochStats> TrainOffline(const workload::Trace& trace,
                                             int max_epochs = 30);
  // Loads pretrained weights into the master and broadcasts them.
  void LoadWeights(const std::string& path);
  // Checkpoints the master weights under the master lock — safe while
  // traffic (and therefore fine-tuning) is flowing.
  void SaveWeights(const std::string& path);

  // --- introspection ---------------------------------------------------
  // Setup/test access to the master model. NOT synchronized: weights
  // mutate under the internal master lock whenever a session fine-tunes,
  // so only touch this while no traffic is flowing (use SaveWeights for
  // live checkpoints).
  core::GonModel& master_gon() { return *master_; }
  std::uint64_t weight_epoch() const {
    return weight_epoch_.load(std::memory_order_acquire);
  }
  ServiceStats stats() const;
  // Master + replicas + per-session Gamma budgets, in MB.
  double MemoryFootprintMb() const;
  const ServiceConfig& config() const { return config_; }

  // Stops accepting new work, drains every accepted request (including
  // every step of in-flight repair pipelines), joins the workers.
  // Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Session;
  struct Worker;
  class ScoreBatcher;
  struct RepairPipeline;

  // A queued request start with its session attached, so the scheduler
  // can hold back requests of sessions that already have a request in
  // flight (per-session FIFO without parking a worker).
  struct QueuedJob {
    std::shared_ptr<Session> session;
    std::function<void(Worker&)> run;
  };

  std::shared_ptr<Session> FindSession(SessionId id) const;
  void Enqueue(std::shared_ptr<Session> session,
               std::function<void(Worker&)> run);
  void WorkerLoop(Worker& worker);
  // Copies master weights into the worker's replica if its epoch is
  // stale; replicas only ever sync at step boundaries.
  void SyncReplica(Worker& worker);

  // --- pipeline steps (see WorkerLoop for the scheduling policy) -------
  // Every kernel call of a pipelined repair now happens inside a flush,
  // so the start/advance steps are pure controller transitions and take
  // no worker: they only build/advance the job and park encoded work.
  // First step of a repair: builds the RepairJob and deposits the first
  // frontier (or, when there is nothing to search, the final-confidence
  // request).
  void StartRepairPipeline(const std::shared_ptr<RepairPipeline>& pipe);
  // Resumed step: feeds returned scores into the job, then deposits the
  // next frontier or the final-confidence request.
  void AdvanceRepairPipeline(const std::shared_ptr<RepairPipeline>& pipe,
                             const std::vector<double>& scores);
  // Encodes the job's pending frontier and parks it in the pending-score
  // pool for the next flush.
  void SubmitFrontier(const std::shared_ptr<RepairPipeline>& pipe);
  // Final pipeline step: encodes the decided topology and parks the
  // pipeline in the pending pool for its confidence score — the
  // per-decision Discriminate calls ride the SAME flush pass as the
  // frontier scoring, stacked across sessions, instead of issuing lone
  // kernel calls.
  void SubmitConfidence(const std::shared_ptr<RepairPipeline>& pipe);
  // Scores EVERYTHING in the pending pool on this worker's replica —
  // frontier jobs as stacked GenerateBatch passes, finished decisions as
  // stacked DiscriminateBatch passes — then schedules continuations and
  // completes responses. Called with `lock` held; unlocks while running
  // kernels.
  void FlushPendingScores(std::unique_lock<std::mutex>& lock,
                          Worker& worker);
  // Marks the session idle again and wakes the scheduler.
  void FinishRequest(Session& session);

  // --- legacy run-to-completion path -----------------------------------
  RepairResponse DoRepair(Session& session, const sim::Topology& current,
                          const std::vector<sim::NodeId>& failed_brokers,
                          const sim::SystemSnapshot& snapshot,
                          Worker& worker);
  ObserveResponse DoObserve(Session& session,
                            const sim::SystemSnapshot& snapshot,
                            Worker& worker);
  std::vector<double> ScoreFrontier(Session& session,
                                    const std::vector<sim::Topology>& frontier,
                                    const sim::SystemSnapshot& snapshot,
                                    Worker& worker);

  ServiceConfig config_;

  // Master model: the only GonModel whose weights mutate (fine-tunes,
  // offline training, weight loads) — always under master_mu_.
  mutable std::mutex master_mu_;
  std::unique_ptr<core::GonModel> master_;
  std::atomic<std::uint64_t> weight_epoch_{0};

  std::vector<std::unique_ptr<Worker>> workers_;

  // Scheduler state, all guarded by queue_mu_: queued request starts,
  // ready-to-run resumed steps, the pending-score pool and the count of
  // requests currently in flight (a request stays in flight across all
  // of its pipeline steps).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedJob> queue_;
  std::deque<std::function<void(Worker&)>> ready_;
  std::vector<std::shared_ptr<RepairPipeline>> pending_scores_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;

  mutable std::mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  std::atomic<SessionId> next_session_id_{1};

  std::unique_ptr<ScoreBatcher> batcher_;  // legacy path only

  std::mutex shutdown_mu_;
  bool shut_down_ = false;

  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> observes_{0};
  std::atomic<std::uint64_t> finetunes_{0};
  std::atomic<std::uint64_t> proactives_{0};
  std::atomic<std::uint64_t> pipeline_passes_{0};
  std::atomic<std::uint64_t> pipeline_jobs_{0};
  std::atomic<std::uint64_t> pipeline_states_{0};
  std::atomic<std::uint64_t> confidence_passes_{0};
  std::atomic<std::uint64_t> confidence_jobs_{0};
};

// Adapter: presents one service session as a core::ResilienceModel, so
// the existing harness (FederationRuntime, RunExperiment) and the
// baseline comparisons keep working unchanged on top of the service.
// Opens its session on construction and closes it on destruction.
class SessionModel : public core::ResilienceModel {
 public:
  SessionModel(ResilienceService& service, const FederationSpec& spec);
  ~SessionModel() override;

  std::string name() const override { return name_; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  SessionId id() const { return id_; }
  // Per-decision service-side latency, one entry per Repair call.
  const std::vector<std::int64_t>& decision_ns_history() const {
    return decision_ns_;
  }
  int finetune_count() const { return finetunes_; }

 private:
  ResilienceService* service_;
  SessionId id_;
  std::string name_;
  std::size_t gamma_capacity_;
  std::vector<std::int64_t> decision_ns_;
  int finetunes_ = 0;
};

}  // namespace carol::serve

#endif  // CAROL_SERVE_SERVICE_H_
