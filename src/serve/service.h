// Multi-tenant resilience serving (the ROADMAP's multi-federation
// sharding item): one ResilienceService owns N concurrent federation
// *sessions* and a sharded pool of GON worker replicas, replacing the
// implicit "one model object == one federation" contract of the
// single-model path.
//
// Architecture:
//   * Sessions hold the per-federation controller state (feature
//     encoder, POT confidence gate, running dataset Gamma, repair rng).
//     They are cheap; the expensive state — the GON surrogate — is
//     shared by every session.
//   * Workers each own a full GonModel replica (GonModel is not
//     thread-safe; see src/core/gon.h). Replicas are architecturally
//     identical clones of a master model: initial weights coincide by
//     seeded construction, and after a confidence-triggered fine-tune on
//     the master the new weights are re-broadcast lazily via an epoch
//     check + nn::CopyParameters before a replica serves its next step.
//   * Repairs run as resumable pipelines (core::RepairJob) over an
//     event-driven step scheduler: a worker executes one pipeline step,
//     the step deposits the session's candidate frontier into a shared
//     pending-score pool, and whichever worker next runs out of compute
//     steps flushes the WHOLE pool as stacked GenerateBatch passes
//     (bucketed by host count inside the GON). Frontiers from N
//     concurrently-repairing sessions therefore share kernel passes with
//     ZERO linger: nothing ever waits on a wall clock, a session's next
//     step is scheduled the moment its scores return.
//   * The legacy run-to-completion path (ServiceConfig::pipeline =
//     false) serves each request on one worker; there, the linger-based
//     cross-session ScoreBatcher is the only way to stack.
//
// Determinism: repair planning runs the same core::RepairJob /
// ScoreTopologiesWith code as CarolModel with per-session rng streams,
// and batched GON passes are exactly equal to sequential ones, so the
// topology decisions of a session are bit-identical to a single
// CarolModel driven with the same inputs — independent of worker count,
// pipeline step interleaving and batch composition. The one caveat is
// weight mutation: fine-tunes from concurrent sessions interleave
// nondeterministically because the surrogate is shared (see
// src/serve/README.md).
#ifndef CAROL_SERVE_SERVICE_H_
#define CAROL_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/carol.h"
#include "core/resilience.h"
#include "obs/metrics.h"

namespace carol::common {
class BinaryReader;
class BinaryWriter;
}  // namespace carol::common

namespace carol::serve {

using SessionId = std::uint64_t;

// Typed admission-control rejection: thrown by Repair/Observe when the
// service already holds ServiceConfig::max_pending_requests admitted
// (queued or in-flight) requests, or when one session exceeds its
// ServiceConfig::max_pending_per_session quota. Callers distinguish
// overload from the generic shutdown std::runtime_error and may retry
// with backoff (the request was never admitted — retrying is safe).
class ServiceOverloadedError : public std::runtime_error {
 public:
  explicit ServiceOverloadedError(std::size_t limit)
      : std::runtime_error(
            "ResilienceService: request rejected, " +
            std::to_string(limit) + " requests already pending"),
        limit_(limit) {}
  ServiceOverloadedError(std::size_t limit, SessionId session)
      : std::runtime_error("ResilienceService: session " +
                           std::to_string(session) + " already holds " +
                           std::to_string(limit) + " pending requests"),
        limit_(limit) {}
  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
};

// Typed deadline rejection: the request's deadline_us budget elapsed
// before the service finished (or even started) it. Deadlines NEVER drop
// requests silently — every expiry surfaces as this error and is counted
// in ServiceStats::timeouts. NOT safe to blind-retry on the repair path:
// a repair that timed out mid-search has consumed session rng draws, so
// a retried run is a fresh decision, not a bit-identical replay.
class ServiceTimeoutError : public std::runtime_error {
 public:
  ServiceTimeoutError()
      : std::runtime_error(
            "ResilienceService: request deadline exceeded before "
            "completion") {}
};

// Typed drain rejection: the service is draining for a snapshot (see
// BeginDrain). Requests rejected or unwound with this error were either
// never started or parked with their full state captured — re-issuing
// the SAME request against the restored service resumes bit-identically,
// so retrying after restore is always safe.
class ServiceSuspendedError : public std::runtime_error {
 public:
  ServiceSuspendedError()
      : std::runtime_error(
            "ResilienceService: draining for snapshot; re-issue the "
            "request after restore") {}
};

// Per-federation serving contract. The nested `carol.gon` sub-config is
// ignored: sessions share the service's surrogate (ServiceConfig::gon).
struct FederationSpec {
  std::string name = "federation";
  core::CarolConfig carol;
};

struct ServiceConfig {
  // The shared surrogate: master + one replica per worker are all built
  // from this config (same seed => identical initial weights).
  core::GonConfig gon;
  // Worker shards. Each owns a GonModel replica and serves any session.
  int num_workers = 4;
  // Step-driven repair pipeline (the default): repairs run as resumable
  // core::RepairJobs over an event-driven scheduler, and concurrent
  // sessions' frontiers stack into shared kernel passes with zero
  // linger. When false, the legacy run-to-completion path serves each
  // request on one worker and `batch_linger_us` governs stacking.
  // Requires cross_session_batching: stacking is the pipeline's whole
  // point, so with batching disabled requests run to completion on one
  // worker (legacy execution) regardless of this flag.
  bool pipeline = true;
  // Stack candidate-scoring jobs from concurrently repairing sessions
  // into shared kernel passes (bucketed by host count). Disabling this
  // also disables the pipeline scheduler (see `pipeline` above): every
  // frontier then scores directly on its request's own worker and the
  // pipeline_* stats stay zero.
  bool cross_session_batching = true;
  // LEGACY (pipeline == false): cap on jobs combined into one batched
  // scoring pass by the linger batcher. The pipeline scheduler flushes
  // everything pending instead.
  std::size_t max_batch_jobs = 8;
  // LEGACY fallback (pipeline == false only): how long a scoring job
  // lingers in the batcher queue waiting for passengers from other
  // sessions before its submitter claims it. 0 (the default) is
  // latency-first and bypasses the batcher entirely, so the legacy path
  // then never stacks. The pipeline path ignores this knob — stacking
  // comes from scheduling, not from waiting — and is the supported way
  // to get cross-session batching without a latency trade.
  int batch_linger_us = 0;
  // Per-replica attention threading for large federations (H >= 64):
  // every worker's GON replica fans the per-state GAT attention of its
  // batched scoring passes across this many threads. Overrides
  // gon.attention_threads when > 1. The master gets NO pool — it only
  // trains/fine-tunes/saves, which never runs the tape-free threaded
  // path. Total compute threads is roughly num_workers *
  // attention_threads — size the product to the machine. Decisions stay
  // bit-identical for any value (threading partitions work, never
  // arithmetic; see src/nn/README.md).
  int attention_threads = 1;
  // Admission control (backpressure): maximum number of admitted-but-
  // unfinished requests — queued plus in flight, across all sessions.
  // 0 = unbounded (the historical behavior). When the bound is hit,
  // admission is PRIORITY-AWARE (graceful degradation): an arriving
  // Observe is rejected with ServiceOverloadedError, while an arriving
  // Repair first displaces the newest queued Observe (whose caller gets
  // the overload error instead) and is only rejected when the backlog
  // is all repairs — Observe load sheds first, repairs shed last.
  std::size_t max_pending_requests = 0;
  // Per-tenant quota: maximum admitted-but-unfinished requests any ONE
  // session may hold (0 = unbounded). Stops a single chatty tenant from
  // monopolizing the global budget; rejections throw
  // ServiceOverloadedError and count as ServiceStats::quota_rejections.
  std::size_t max_pending_per_session = 0;
  // Observability (src/obs): per-stage latency histograms (sharded per
  // worker, relaxed atomics — never the service lock) and the
  // repair-path DecisionTrace ring. Determinism-neutral: timestamps are
  // only ever RECORDED, never branched on, so decisions are bit-identical
  // with this on or off (pinned by tests/obs_test.cpp). When false,
  // MetricsSnapshot() still reports every ServiceStats counter (they are
  // the service's own accounting, always on) but histograms/traces stay
  // empty and the hot path takes zero extra clock reads.
  bool observability = true;
  // Bounded capacity of the DecisionTrace ring (completed pipelined
  // repairs; oldest retired first).
  std::size_t trace_capacity = 256;
};

// Scoped-repair mode for one request: plan on the subgraph-extracted
// affected region (core::RepairSubgraph) instead of the full federation.
// `hints` seed optional LEIs in priority order — the caller-side kernel
// knows which hosts are dirty/engaged (simkern::RepairScopeHints); the
// service itself only sees snapshots. Attaching a scope to a request IS
// the opt-in: `options.enabled` is not consulted here (that flag gates
// the single-model CarolModel path). Frontiers of a scoped repair are
// H_sub-node states, so mixed scoped/unscoped traffic stacks through the
// pipeline's existing per-H bucketing.
struct RepairScope {
  core::ScopedRepairOptions options;
  std::vector<sim::NodeId> hints;

  friend bool operator==(const RepairScope& a, const RepairScope& b) {
    return a.options.max_hosts == b.options.max_hosts &&
           a.options.fill_to_budget == b.options.fill_to_budget &&
           a.hints == b.hints;
  }
};

struct RepairRequest {
  sim::Topology current;
  std::vector<sim::NodeId> failed_brokers;
  sim::SystemSnapshot snapshot;
  // Deadline budget in microseconds from submission (0 = none). On
  // expiry — queued or between pipeline steps — the call fails with
  // ServiceTimeoutError instead of silently dropping.
  std::int64_t deadline_us = 0;
  // When set, the repair runs in scoped (subgraph-extracted) mode.
  std::optional<RepairScope> scope;
};

struct RepairResponse {
  sim::Topology topology;
  // D(M_t, S_t, G_repaired): the surrogate's confidence in the tuple
  // under the returned topology.
  double confidence = 0.0;
  // Service-side decision latency (planning + confidence), the paper's
  // headline per-interval metric.
  std::int64_t decision_ns = 0;
};

struct ObserveRequest {
  sim::SystemSnapshot snapshot;
  // Deadline budget in microseconds from submission (0 = none).
  std::int64_t deadline_us = 0;
};

struct ObserveResponse {
  double confidence = 0.0;
  double threshold = 0.0;
  bool fine_tuned = false;
  std::int64_t observe_ns = 0;
};

struct ServiceStats {
  std::uint64_t repairs = 0;
  std::uint64_t observes = 0;
  std::uint64_t finetunes = 0;
  // Proactive (no-failure) re-optimizations across all sessions.
  std::uint64_t proactive_optimizations = 0;
  // LEGACY linger batcher: batched scoring passes run, and how many jobs
  // shared a pass with at least one other job.
  std::uint64_t score_batches = 0;
  std::uint64_t stacked_jobs = 0;
  // Pipeline scheduler: GON generation kernel passes flushed from the
  // pending-score pool, the frontier jobs they carried, and the total
  // candidate states scored. The cross-session *stacking ratio* is
  // pipeline_jobs / pipeline_passes — 1.0 means every pass carried a
  // single session's frontier, 2.0 means two sessions shared each pass
  // on average (see src/serve/README.md).
  std::uint64_t pipeline_passes = 0;
  std::uint64_t pipeline_jobs = 0;
  std::uint64_t pipeline_states = 0;
  // Final per-decision confidence scoring, stacked into the same flush
  // pass: Discriminate kernel passes run (one per H bucket per flush)
  // and the decisions they scored. confidence_jobs > confidence_passes
  // means concurrent decisions shared confidence kernels — the
  // confidence gate no longer issues lone per-decision kernel calls.
  std::uint64_t confidence_passes = 0;
  std::uint64_t confidence_jobs = 0;
  std::uint64_t weight_epoch = 0;
  // Admission / degradation accounting. Every counter below corresponds
  // to EXACTLY ONE typed error delivered to a caller — never a silent
  // drop — so client-side retry accounting reconciles with these.
  // Observes rejected (or displaced by an arriving repair) at the
  // max_pending_requests bound.
  std::uint64_t shed_observes = 0;
  // Repairs rejected at the bound because the backlog was all repairs.
  std::uint64_t shed_repairs = 0;
  // Requests rejected at the per-session max_pending_per_session quota.
  std::uint64_t quota_rejections = 0;
  // Requests failed with ServiceTimeoutError (deadline_us elapsed).
  std::uint64_t timeouts = 0;
  // Requests rejected or unwound with ServiceSuspendedError during a
  // drain (including parked in-flight repairs).
  std::uint64_t suspended = 0;
};

class ResilienceService {
 public:
  explicit ResilienceService(const ServiceConfig& config);
  // Restore constructors: build a fresh service (workers, replicas) from
  // `config`, then load a SaveSnapshot image — master weights + weight
  // epoch, every session (config, rng stream, confidence-gate state,
  // any parked mid-repair search) and the session-id counter. Driving
  // the restored service with the same requests the original would have
  // received produces bit-identical decisions (see src/serve/README.md
  // for the format versioning policy). Throws common::BinaryFormatError
  // on foreign/truncated input.
  ResilienceService(const ServiceConfig& config, std::istream& snapshot);
  ResilienceService(const ServiceConfig& config,
                    const std::string& snapshot_path);
  ~ResilienceService();

  ResilienceService(const ResilienceService&) = delete;
  ResilienceService& operator=(const ResilienceService&) = delete;

  // --- session lifecycle -----------------------------------------------
  SessionId OpenSession(const FederationSpec& spec);
  void CloseSession(SessionId id);
  std::size_t session_count() const;

  // --- the decision API ------------------------------------------------
  // Both calls block until the request has been served. Calls for the
  // SAME session are serialized internally; issue them from one client
  // thread per session if request order matters.
  RepairResponse Repair(SessionId id, const RepairRequest& request);
  ObserveResponse Observe(SessionId id, const ObserveRequest& request);
  // Zero-copy overloads (SessionModel's per-interval hot path): the
  // arguments are borrowed for the duration of the blocking call.
  // `scope`, when non-null, selects scoped (subgraph-extracted) repair —
  // see RepairScope; it too is only borrowed.
  RepairResponse Repair(SessionId id, const sim::Topology& current,
                        const std::vector<sim::NodeId>& failed_brokers,
                        const sim::SystemSnapshot& snapshot,
                        std::int64_t deadline_us = 0,
                        const RepairScope* scope = nullptr);
  ObserveResponse Observe(SessionId id, const sim::SystemSnapshot& snapshot,
                          std::int64_t deadline_us = 0);

  // --- crash-safe serving: drain, snapshot, restore --------------------
  // Stops admitting new requests (they fail with ServiceSuspendedError),
  // fails every queued-but-unstarted request the same way, and parks
  // each in-flight pipelined repair at its next step boundary: the
  // job's complete search state (tabu lists, pending frontier, phase,
  // rng position) is captured inside the session and the blocked caller
  // gets ServiceSuspendedError. Re-issuing the same request after a
  // restore resumes the search bit-identically. Legacy-mode
  // (pipeline=false) requests cannot park and run to completion.
  void BeginDrain();
  // Blocks until nothing is queued, ready, awaiting scores or in flight
  // — the quiescent state SaveSnapshot requires. Call after BeginDrain
  // (or at any externally-guaranteed quiet point, e.g. the scenario
  // driver's interval barrier).
  void WaitDrained();
  // Serializes the complete service state ("carol-snap" v1, versioned
  // binary; see src/serve/README.md). Throws std::logic_error unless
  // the service is quiescent.
  void SaveSnapshot(std::ostream& out) const;
  void SaveSnapshot(const std::string& path) const;

  // --- shared-surrogate management -------------------------------------
  // Offline-trains the master on the trace Lambda and broadcasts the new
  // weights. Call before opening traffic (it blocks the master).
  std::vector<core::EpochStats> TrainOffline(const workload::Trace& trace,
                                             int max_epochs = 30);
  // Loads pretrained weights into the master and broadcasts them.
  void LoadWeights(const std::string& path);
  // Checkpoints the master weights under the master lock — safe while
  // traffic (and therefore fine-tuning) is flowing.
  void SaveWeights(const std::string& path);

  // --- introspection ---------------------------------------------------
  // Setup/test access to the master model. NOT synchronized: weights
  // mutate under the internal master lock whenever a session fine-tunes,
  // so only touch this while no traffic is flowing (use SaveWeights for
  // live checkpoints).
  core::GonModel& master_gon() { return *master_; }
  std::uint64_t weight_epoch() const {
    return weight_epoch_.load(std::memory_order_acquire);
  }
  ServiceStats stats() const;
  // --- observability ---------------------------------------------------
  // Merged point-in-time metrics view: every ServiceStats counter (the
  // two reconcile exactly — same atomics), liveness gauges, and — when
  // ServiceConfig::observability is on — the per-stage latency
  // histograms merged across worker shards. Safe to poll while traffic
  // flows.
  obs::MetricsSnapshot MetricsSnapshot() const;
  // The retained window of completed repair-path span traces, oldest
  // first (empty in legacy mode or with observability off).
  std::vector<obs::DecisionTrace> DecisionTraces() const;
  // Master + replicas + per-session Gamma budgets, in MB.
  double MemoryFootprintMb() const;
  const ServiceConfig& config() const { return config_; }

  // Stops accepting new work, drains every accepted request (including
  // every step of in-flight repair pipelines), joins the workers.
  // Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Session;
  struct Worker;
  class ScoreBatcher;
  struct RepairPipeline;
  struct ParkedRepair;
  struct Obs;

  // A queued request start with its session attached, so the scheduler
  // can hold back requests of sessions that already have a request in
  // flight (per-session FIFO without parking a worker). The admission
  // class (is_repair), deadline and failure path ride along so the
  // scheduler can shed, expire and drain queued requests with typed
  // errors without running them.
  struct QueuedJob {
    std::shared_ptr<Session> session;
    std::function<void(Worker&)> run;
    bool is_repair = false;
    // Absolute expiry (default-constructed = no deadline).
    std::chrono::steady_clock::time_point deadline{};
    // Fails the blocked caller without running the request (shed /
    // timeout / drain). Must be callable from any thread.
    std::function<void(std::exception_ptr)> fail;
  };

  std::shared_ptr<Session> FindSession(SessionId id) const;
  void Enqueue(std::shared_ptr<Session> session,
               std::function<void(Worker&)> run, bool is_repair,
               std::chrono::steady_clock::time_point deadline,
               std::function<void(std::exception_ptr)> fail);
  void WorkerLoop(Worker& worker);
  // Copies master weights into the worker's replica if its epoch is
  // stale; replicas only ever sync at step boundaries.
  void SyncReplica(Worker& worker);

  // --- pipeline steps (see WorkerLoop for the scheduling policy) -------
  // Every kernel call of a pipelined repair now happens inside a flush,
  // so the start/advance steps are pure controller transitions and take
  // no worker: they only build/advance the job and park encoded work.
  // First step of a repair: builds the RepairJob and deposits the first
  // frontier (or, when there is nothing to search, the final-confidence
  // request).
  void StartRepairPipeline(const std::shared_ptr<RepairPipeline>& pipe);
  // Resumed step: feeds returned scores into the job, then deposits the
  // next frontier or the final-confidence request.
  void AdvanceRepairPipeline(const std::shared_ptr<RepairPipeline>& pipe,
                             const std::vector<double>& scores);
  // Deposits the pipeline into the pending-score pool — or, during a
  // drain, captures its job state into the session (ParkedRepair) and
  // unwinds the caller with ServiceSuspendedError.
  void ParkOrSubmit(const std::shared_ptr<RepairPipeline>& pipe);
  // Encodes the job's pending frontier and parks it in the pending-score
  // pool for the next flush.
  void SubmitFrontier(const std::shared_ptr<RepairPipeline>& pipe);
  // Final pipeline step: encodes the decided topology and parks the
  // pipeline in the pending pool for its confidence score — the
  // per-decision Discriminate calls ride the SAME flush pass as the
  // frontier scoring, stacked across sessions, instead of issuing lone
  // kernel calls.
  void SubmitConfidence(const std::shared_ptr<RepairPipeline>& pipe);
  // Scores EVERYTHING in the pending pool on this worker's replica —
  // frontier jobs as stacked GenerateBatch passes, finished decisions as
  // stacked DiscriminateBatch passes — then schedules continuations and
  // completes responses. Called with `lock` held; unlocks while running
  // kernels.
  void FlushPendingScores(std::unique_lock<std::mutex>& lock,
                          Worker& worker);
  // Marks the session idle again and wakes the scheduler.
  void FinishRequest(Session& session);
  // Fails expired queued requests with ServiceTimeoutError. Called by
  // the worker loop with `lock` held; unlocks to deliver the errors.
  // Returns true when anything expired (the caller rescans).
  bool ExpireQueuedDeadlines(std::unique_lock<std::mutex>& lock);
  // Loads a SaveSnapshot image into this freshly-built service.
  void RestoreFromSnapshot(std::istream& in);
  static void WriteSession(common::BinaryWriter& w, const Session& session);
  std::shared_ptr<Session> ReadSession(common::BinaryReader& r);

  // --- legacy run-to-completion path -----------------------------------
  RepairResponse DoRepair(Session& session, const sim::Topology& current,
                          const std::vector<sim::NodeId>& failed_brokers,
                          const sim::SystemSnapshot& snapshot,
                          const RepairScope* scope, Worker& worker);
  ObserveResponse DoObserve(Session& session,
                            const sim::SystemSnapshot& snapshot,
                            Worker& worker);
  std::vector<double> ScoreFrontier(Session& session,
                                    const std::vector<sim::Topology>& frontier,
                                    const sim::SystemSnapshot& snapshot,
                                    Worker& worker);

  ServiceConfig config_;

  // Master model: the only GonModel whose weights mutate (fine-tunes,
  // offline training, weight loads) — always under master_mu_.
  mutable std::mutex master_mu_;
  std::unique_ptr<core::GonModel> master_;
  std::atomic<std::uint64_t> weight_epoch_{0};

  std::vector<std::unique_ptr<Worker>> workers_;

  // Scheduler state, all guarded by queue_mu_: queued request starts,
  // ready-to-run resumed steps, the pending-score pool and the count of
  // requests currently in flight (a request stays in flight across all
  // of its pipeline steps).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedJob> queue_;
  std::deque<std::function<void(Worker&)>> ready_;
  std::vector<std::shared_ptr<RepairPipeline>> pending_scores_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;
  // Drain mode (BeginDrain): no admissions, in-flight pipelines park at
  // their next step boundary. Guarded by queue_mu_.
  bool draining_ = false;

  mutable std::mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  std::atomic<SessionId> next_session_id_{1};

  std::unique_ptr<ScoreBatcher> batcher_;  // legacy path only

  // Timing instrumentation (ServiceConfig::observability): the sharded
  // histogram registry + trace ring. Null when observability is off —
  // every instrumentation site is gated on this one pointer.
  std::unique_ptr<Obs> obs_;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;

  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> observes_{0};
  std::atomic<std::uint64_t> finetunes_{0};
  std::atomic<std::uint64_t> proactives_{0};
  std::atomic<std::uint64_t> pipeline_passes_{0};
  std::atomic<std::uint64_t> pipeline_jobs_{0};
  std::atomic<std::uint64_t> pipeline_states_{0};
  std::atomic<std::uint64_t> confidence_passes_{0};
  std::atomic<std::uint64_t> confidence_jobs_{0};
  std::atomic<std::uint64_t> shed_observes_{0};
  std::atomic<std::uint64_t> shed_repairs_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> suspended_{0};
};

// Adapter: presents one service session as a core::ResilienceModel, so
// the existing harness (FederationRuntime, RunExperiment) and the
// baseline comparisons keep working unchanged on top of the service.
// Opens its session on construction and closes it on destruction.
class SessionModel : public core::ResilienceModel {
 public:
  SessionModel(ResilienceService& service, const FederationSpec& spec);
  ~SessionModel() override;

  std::string name() const override { return name_; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  SessionId id() const { return id_; }
  // Per-decision service-side latency: bounded ring over the last
  // obs::LatencyRing::kDefaultCapacity Repair calls plus a histogram +
  // running count/sum over all of them — a year-long session no longer
  // grows a vector forever. harness::MakeSessionQos consumes this
  // directly (exact percentiles until the ring overflows, histogram
  // percentiles after).
  const obs::LatencyRing& decision_latency() const { return decision_ns_; }
  // Compat shim for the old unbounded accessor: the RETAINED window,
  // oldest first (now a copy, capped at the ring capacity).
  std::vector<std::int64_t> decision_ns_history() const {
    return decision_ns_.Samples();
  }
  int finetune_count() const { return finetunes_; }

 private:
  ResilienceService* service_;
  SessionId id_;
  std::string name_;
  std::size_t gamma_capacity_;
  obs::LatencyRing decision_ns_;
  int finetunes_ = 0;
};

}  // namespace carol::serve

#endif  // CAROL_SERVE_SERVICE_H_
