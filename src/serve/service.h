// Multi-tenant resilience serving (the ROADMAP's multi-federation
// sharding item): one ResilienceService owns N concurrent federation
// *sessions* and a sharded pool of GON worker replicas, replacing the
// implicit "one model object == one federation" contract of the
// single-model path.
//
// Architecture:
//   * Sessions hold the per-federation controller state (feature
//     encoder, POT confidence gate, running dataset Gamma, repair rng).
//     They are cheap; the expensive state — the GON surrogate — is
//     shared by every session.
//   * Workers each own a full GonModel replica (GonModel is not
//     thread-safe; see src/core/gon.h). Replicas are architecturally
//     identical clones of a master model: initial weights coincide by
//     seeded construction, and after a confidence-triggered fine-tune on
//     the master the new weights are re-broadcast lazily via an epoch
//     check + nn::CopyParameters before a replica serves its next job.
//   * A cross-session score batcher stacks candidate-topology scoring
//     jobs from concurrently repairing sessions into single GON kernel
//     passes, bucketing states by host count (mixed-H federations).
//
// Determinism: repair planning runs the same core::PlanRepair /
// ScoreTopologiesWith code as CarolModel with per-session rng streams,
// and batched GON passes are exactly equal to sequential ones, so the
// topology decisions of a session are bit-identical to a single
// CarolModel driven with the same inputs — independent of worker count
// and batch composition. The one caveat is weight mutation: fine-tunes
// from concurrent sessions interleave nondeterministically because the
// surrogate is shared (see src/serve/README.md).
#ifndef CAROL_SERVE_SERVICE_H_
#define CAROL_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/carol.h"
#include "core/resilience.h"

namespace carol::serve {

using SessionId = std::uint64_t;

// Per-federation serving contract. The nested `carol.gon` sub-config is
// ignored: sessions share the service's surrogate (ServiceConfig::gon).
struct FederationSpec {
  std::string name = "federation";
  core::CarolConfig carol;
};

struct ServiceConfig {
  // The shared surrogate: master + one replica per worker are all built
  // from this config (same seed => identical initial weights).
  core::GonConfig gon;
  // Worker shards. Each owns a GonModel replica and serves any session.
  int num_workers = 4;
  // Stack candidate-scoring jobs from concurrently repairing sessions
  // into shared kernel passes (bucketed by host count).
  bool cross_session_batching = true;
  // Cap on jobs combined into one batched scoring pass.
  std::size_t max_batch_jobs = 8;
  // How long a scoring job lingers in the batcher queue waiting for
  // passengers from other sessions before its submitter claims it.
  // 0 (the default) is latency-first and bypasses the batcher entirely:
  // frontiers score directly on the serving worker, since a zero-length
  // window can never observe a peer's job. Set > 0 on
  // throughput-oriented deployments with many more sessions than
  // workers; results are identical either way (batch composition never
  // changes decisions).
  int batch_linger_us = 0;
};

struct RepairRequest {
  sim::Topology current;
  std::vector<sim::NodeId> failed_brokers;
  sim::SystemSnapshot snapshot;
};

struct RepairResponse {
  sim::Topology topology;
  // D(M_t, S_t, G_repaired): the surrogate's confidence in the tuple
  // under the returned topology.
  double confidence = 0.0;
  // Service-side decision latency (planning + confidence), the paper's
  // headline per-interval metric.
  std::int64_t decision_ns = 0;
};

struct ObserveRequest {
  sim::SystemSnapshot snapshot;
};

struct ObserveResponse {
  double confidence = 0.0;
  double threshold = 0.0;
  bool fine_tuned = false;
  std::int64_t observe_ns = 0;
};

struct ServiceStats {
  std::uint64_t repairs = 0;
  std::uint64_t observes = 0;
  std::uint64_t finetunes = 0;
  // Proactive (no-failure) re-optimizations across all sessions.
  std::uint64_t proactive_optimizations = 0;
  // Batched scoring passes run by the cross-session batcher, and how
  // many jobs shared a pass with at least one other job.
  std::uint64_t score_batches = 0;
  std::uint64_t stacked_jobs = 0;
  std::uint64_t weight_epoch = 0;
};

class ResilienceService {
 public:
  explicit ResilienceService(const ServiceConfig& config);
  ~ResilienceService();

  ResilienceService(const ResilienceService&) = delete;
  ResilienceService& operator=(const ResilienceService&) = delete;

  // --- session lifecycle -----------------------------------------------
  SessionId OpenSession(const FederationSpec& spec);
  void CloseSession(SessionId id);
  std::size_t session_count() const;

  // --- the decision API ------------------------------------------------
  // Both calls block until a worker shard has served the request. Calls
  // for the SAME session are serialized internally; issue them from one
  // client thread per session if request order matters.
  RepairResponse Repair(SessionId id, const RepairRequest& request);
  ObserveResponse Observe(SessionId id, const ObserveRequest& request);
  // Zero-copy overloads (SessionModel's per-interval hot path): the
  // arguments are borrowed for the duration of the blocking call.
  RepairResponse Repair(SessionId id, const sim::Topology& current,
                        const std::vector<sim::NodeId>& failed_brokers,
                        const sim::SystemSnapshot& snapshot);
  ObserveResponse Observe(SessionId id,
                          const sim::SystemSnapshot& snapshot);

  // --- shared-surrogate management -------------------------------------
  // Offline-trains the master on the trace Lambda and broadcasts the new
  // weights. Call before opening traffic (it blocks the master).
  std::vector<core::EpochStats> TrainOffline(const workload::Trace& trace,
                                             int max_epochs = 30);
  // Loads pretrained weights into the master and broadcasts them.
  void LoadWeights(const std::string& path);
  // Checkpoints the master weights under the master lock — safe while
  // traffic (and therefore fine-tuning) is flowing.
  void SaveWeights(const std::string& path);

  // --- introspection ---------------------------------------------------
  // Setup/test access to the master model. NOT synchronized: weights
  // mutate under the internal master lock whenever a session fine-tunes,
  // so only touch this while no traffic is flowing (use SaveWeights for
  // live checkpoints).
  core::GonModel& master_gon() { return *master_; }
  std::uint64_t weight_epoch() const {
    return weight_epoch_.load(std::memory_order_acquire);
  }
  ServiceStats stats() const;
  // Master + replicas + per-session Gamma budgets, in MB.
  double MemoryFootprintMb() const;
  const ServiceConfig& config() const { return config_; }

  // Stops accepting new work, drains every accepted request, joins the
  // workers. Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Session;
  struct Worker;
  class ScoreBatcher;

  // A queued request with its session attached, so the scheduler can
  // skip jobs whose session is mid-execution on another worker (one
  // chatty session must not park the whole pool).
  struct QueuedJob {
    std::shared_ptr<Session> session;
    std::function<void(Worker&)> run;
  };

  std::shared_ptr<Session> FindSession(SessionId id) const;
  void Enqueue(std::shared_ptr<Session> session,
               std::function<void(Worker&)> run);
  void WorkerLoop(Worker& worker);
  // Copies master weights into the worker's replica if its epoch is
  // stale; replicas only ever sync at job boundaries.
  void SyncReplica(Worker& worker);

  RepairResponse DoRepair(Session& session, const sim::Topology& current,
                          const std::vector<sim::NodeId>& failed_brokers,
                          const sim::SystemSnapshot& snapshot,
                          Worker& worker);
  ObserveResponse DoObserve(Session& session,
                            const sim::SystemSnapshot& snapshot,
                            Worker& worker);
  std::vector<double> ScoreFrontier(Session& session,
                                    const std::vector<sim::Topology>& frontier,
                                    const sim::SystemSnapshot& snapshot,
                                    Worker& worker);

  ServiceConfig config_;

  // Master model: the only GonModel whose weights mutate (fine-tunes,
  // offline training, weight loads) — always under master_mu_.
  mutable std::mutex master_mu_;
  std::unique_ptr<core::GonModel> master_;
  std::atomic<std::uint64_t> weight_epoch_{0};

  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedJob> queue_;
  bool stopping_ = false;

  mutable std::mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  std::atomic<SessionId> next_session_id_{1};

  std::unique_ptr<ScoreBatcher> batcher_;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;

  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> observes_{0};
  std::atomic<std::uint64_t> finetunes_{0};
  std::atomic<std::uint64_t> proactives_{0};
};

// Adapter: presents one service session as a core::ResilienceModel, so
// the existing harness (FederationRuntime, RunExperiment) and the
// baseline comparisons keep working unchanged on top of the service.
// Opens its session on construction and closes it on destruction.
class SessionModel : public core::ResilienceModel {
 public:
  SessionModel(ResilienceService& service, const FederationSpec& spec);
  ~SessionModel() override;

  std::string name() const override { return name_; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  SessionId id() const { return id_; }
  // Per-decision service-side latency, one entry per Repair call.
  const std::vector<std::int64_t>& decision_ns_history() const {
    return decision_ns_;
  }
  int finetune_count() const { return finetunes_; }

 private:
  ResilienceService* service_;
  SessionId id_;
  std::string name_;
  std::size_t gamma_capacity_;
  std::vector<std::int64_t> decision_ns_;
  int finetunes_ = 0;
};

}  // namespace carol::serve

#endif  // CAROL_SERVE_SERVICE_H_
