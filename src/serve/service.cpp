#include "serve/service.h"

#include <chrono>
#include <future>
#include <span>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/bucket.h"
#include "nn/serialize.h"

namespace carol::serve {

namespace {
using Clock = std::chrono::steady_clock;

std::int64_t NsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}
}  // namespace

// --- internal state -----------------------------------------------------

// Per-federation controller state. Everything here is cheap; the GON
// surrogate is shared by every session (see header comment).
struct ResilienceService::Session {
  explicit Session(const FederationSpec& spec)
      : name(spec.name),
        cfg(spec.carol),
        gate(spec.carol),
        rng(spec.carol.seed) {
    // Serve sessions are long-running and nothing reads the Figure-2
    // series through the service API — don't grow it forever.
    gate.set_record_history(false);
  }

  SessionId id = 0;
  std::string name;
  core::CarolConfig cfg;
  core::FeatureEncoder encoder;
  core::ConfidenceGate gate;
  common::Rng rng;
  // True while a request of this session is in flight — from the moment
  // a worker pops its start step until its response promise is
  // satisfied, across every pipeline step in between. Guarded by the
  // service's queue_mu_. The scheduler holds back queued requests of
  // active sessions, so session work is exclusive AND in FIFO submission
  // order without a per-session lock that could park worker threads.
  bool active = false;
};

// A worker shard: one thread, one GonModel replica. The replica is only
// ever touched by its own thread (plus the master-locked weight sync).
struct ResilienceService::Worker {
  std::unique_ptr<core::GonModel> replica;
  std::uint64_t epoch = 0;  // last weight epoch copied from the master
  std::thread thread;
};

// One in-flight pipelined repair: the resumable core::RepairJob plus the
// request/response plumbing. The blocking caller owns the request pieces
// and the promise; steps reference the pipeline via shared_ptr. Fields
// are only ever touched by the single step currently executing for this
// pipeline — step hand-offs synchronize through queue_mu_.
struct ResilienceService::RepairPipeline {
  // Which scoring the parked pipeline is waiting for: its candidate
  // frontier (GenerateBatch) or — once the search finished — the final
  // per-decision confidence (DiscriminateBatch). Both ride the same
  // flush pass, so the confidence gate stacks across sessions too.
  enum class Stage { kSearch, kConfidence };

  std::shared_ptr<Session> session;
  const sim::Topology* current = nullptr;
  const std::vector<sim::NodeId>* failed = nullptr;
  const sim::SystemSnapshot* snapshot = nullptr;
  std::promise<RepairResponse>* promise = nullptr;
  Clock::time_point t0{};
  std::optional<core::RepairJob> job;
  Stage stage = Stage::kSearch;
  // The encoded pending frontier, parked in the pending-score pool.
  std::vector<core::EncodedState> contexts;
  // kConfidence: the decided topology's encoding + the response being
  // assembled (confidence filled by the flush).
  core::EncodedState final_state;
  RepairResponse response;
};

// LEGACY cross-session bucketing queue (pipeline == false): candidate-
// scoring jobs from concurrently repairing sessions are claimed in
// batches after a linger window, grouped by host count, and each H
// bucket runs as ONE stacked GenerateBatch pass. Batched GON passes
// equal sequential ones exactly, so results are independent of batch
// composition — stacking is purely a kernel-efficiency play.
class ResilienceService::ScoreBatcher {
 public:
  ScoreBatcher(std::size_t max_jobs, int linger_us)
      : max_jobs_(max_jobs), linger_us_(linger_us) {}

  // Submits one job (a session's frontier, already encoded), optionally
  // lingers to let concurrent submitters pile on, then claims its own
  // job plus every pending job tagged with the SAME weight epoch — a
  // claimer may only execute jobs on its replica when the submitter saw
  // identical weights, otherwise stacking could serve stale parameters
  // and break the bit-identity guarantee. A job claimed by another
  // thread is simply awaited; epoch-mismatched jobs stay queued for
  // their own submitters, so nothing is orphaned.
  std::vector<double> Execute(std::vector<core::EncodedState> contexts,
                              double alpha, double beta,
                              std::uint64_t epoch,
                              core::GonModel& replica) {
    auto job = std::make_shared<ScoreJob>();
    job->host_count = contexts.front().m.rows();
    job->contexts = std::move(contexts);
    job->alpha = alpha;
    job->beta = beta;
    job->epoch = epoch;
    auto future = job->promise.get_future();
    std::vector<std::shared_ptr<ScoreJob>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push_back(job);
      cv_.notify_all();
      if (linger_us_ > 0 && queue_.size() < max_jobs_) {
        cv_.wait_for(lock, std::chrono::microseconds(linger_us_), [&] {
          return job->claimed || queue_.size() >= max_jobs_;
        });
      }
      if (!job->claimed) {
        // Claim our own job FIRST — filling the batch from the queue
        // front could otherwise hit max_jobs_ before reaching it,
        // leaving it orphaned (and this thread blocked forever below).
        job->claimed = true;
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (*it == job) {
            queue_.erase(it);
            break;
          }
        }
        batch.push_back(job);
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < max_jobs_;) {
          if ((*it)->epoch == epoch) {
            (*it)->claimed = true;
            batch.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    if (!batch.empty()) {
      cv_.notify_all();  // wake lingerers whose jobs we just claimed
      RunBatch(batch, replica);
    }
    return future.get();
  }

  std::uint64_t score_batches() const { return score_batches_.load(); }
  std::uint64_t stacked_jobs() const { return stacked_jobs_.load(); }

 private:
  struct ScoreJob {
    std::vector<core::EncodedState> contexts;
    double alpha = 0.5;
    double beta = 0.5;
    std::size_t host_count = 0;
    std::uint64_t epoch = 0;  // submitter's replica weight epoch
    bool claimed = false;     // guarded by mu_
    std::promise<std::vector<double>> promise;
  };

  void RunBatch(std::vector<std::shared_ptr<ScoreJob>>& batch,
                core::GonModel& replica) {
    const auto buckets = core::GroupIndicesBy(
        batch.size(),
        [&](std::size_t i) { return batch[i]->host_count; });
    std::vector<const nn::Matrix*> inits;
    std::vector<const core::EncodedState*> ctxs;
    for (const auto& bucket : buckets) {
      inits.clear();
      ctxs.clear();
      for (std::size_t j : bucket) {
        for (const core::EncodedState& ctx : batch[j]->contexts) {
          inits.push_back(&ctx.m);
          ctxs.push_back(&ctx);
        }
      }
      // Promises are only touched after ALL per-job results exist, and
      // the catch covers exactly the not-yet-satisfied tail — calling
      // set_exception on an already-satisfied promise would itself throw
      // and orphan the remaining jobs' waiters forever.
      std::size_t done = 0;
      try {
        const std::vector<core::GenerationResult> gens =
            replica.GenerateBatch(inits, ctxs);
        std::vector<std::vector<double>> all_scores(bucket.size());
        std::size_t pos = 0;
        for (std::size_t b = 0; b < bucket.size(); ++b) {
          const ScoreJob& j = *batch[bucket[b]];
          all_scores[b].reserve(j.contexts.size());
          for (std::size_t c = 0; c < j.contexts.size(); ++c) {
            all_scores[b].push_back(core::QosObjective(
                gens[pos++].metrics, j.alpha, j.beta));
          }
        }
        for (; done < bucket.size(); ++done) {
          batch[bucket[done]]->promise.set_value(
              std::move(all_scores[done]));
        }
      } catch (...) {
        for (std::size_t b = done; b < bucket.size(); ++b) {
          batch[bucket[b]]->promise.set_exception(std::current_exception());
        }
      }
      score_batches_.fetch_add(1, std::memory_order_relaxed);
      if (bucket.size() > 1) {
        stacked_jobs_.fetch_add(bucket.size(), std::memory_order_relaxed);
      }
    }
  }

  std::size_t max_jobs_;
  int linger_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ScoreJob>> queue_;
  std::atomic<std::uint64_t> score_batches_{0};
  std::atomic<std::uint64_t> stacked_jobs_{0};
};

// --- service ------------------------------------------------------------

ResilienceService::ResilienceService(const ServiceConfig& config)
    : config_(config) {
  if (config_.num_workers < 1) {
    throw std::invalid_argument("ResilienceService: num_workers must be >= 1");
  }
  // Per-replica attention threading. The master never runs the
  // tape-free threaded scoring path (it only trains/fine-tunes/saves),
  // so it gets no pool — only the replicas do. Thread count never
  // changes values, so the mixed sizing is invisible to results.
  if (config_.attention_threads > 1) {
    config_.gon.attention_threads = config_.attention_threads;
  }
  core::GonConfig master_cfg = config_.gon;
  master_cfg.attention_threads = 1;
  master_ = std::make_unique<core::GonModel>(master_cfg);
  batcher_ = std::make_unique<ScoreBatcher>(
      std::max<std::size_t>(1, config_.max_batch_jobs),
      config_.batch_linger_us);
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    // Same config (and seed) as the master => identical initial weights,
    // so epoch 0 needs no copy.
    worker->replica = std::make_unique<core::GonModel>(config_.gon);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(*w); });
  }
}

ResilienceService::~ResilienceService() { Shutdown(); }

void ResilienceService::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  shut_down_ = true;
}

void ResilienceService::WorkerLoop(Worker& worker) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] {
      if (!ready_.empty() || !pending_scores_.empty()) return true;
      for (const QueuedJob& job : queue_) {
        if (!job.session->active) return true;
      }
      return stopping_ && queue_.empty() && inflight_ == 0;
    });
    // Scheduling policy, in priority order:
    //   1. resumed pipeline steps — they complete in-flight repairs and
    //      deposit fresh frontiers into the pending-score pool;
    //   2. new requests (earliest whose session is idle — FIFO within a
    //      session and across sessions, and a session already being
    //      served never parks this worker) — their first step stacks
    //      more frontiers;
    //   3. a stacked scoring pass over EVERYTHING pending.
    // A worker only flushes when no compute step is runnable, so
    // frontiers pile up exactly while peers have other work — stacking
    // with zero wall-clock lingering.
    if (!ready_.empty()) {
      std::function<void(Worker&)> step = std::move(ready_.front());
      ready_.pop_front();
      lock.unlock();
      step(worker);
      lock.lock();
      continue;
    }
    auto runnable = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!it->session->active) {
        runnable = it;
        break;
      }
    }
    if (runnable != queue_.end()) {
      QueuedJob job = std::move(*runnable);
      queue_.erase(runnable);
      job.session->active = true;
      ++inflight_;
      lock.unlock();
      job.run(worker);
      lock.lock();
      continue;
    }
    if (!pending_scores_.empty()) {
      FlushPendingScores(lock, worker);  // unlocks while running kernels
      continue;
    }
    if (stopping_ && queue_.empty() && ready_.empty() &&
        pending_scores_.empty() && inflight_ == 0) {
      return;
    }
  }
}

void ResilienceService::Enqueue(std::shared_ptr<Session> session,
                                std::function<void(Worker&)> run) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      throw std::runtime_error("ResilienceService: shut down");
    }
    // Admission control: every admitted request is either still queued
    // or in flight (inflight_ covers all of a pipeline's steps), so
    // their sum is the service's total outstanding work. Rejecting here
    // — before the queue grows — is what bounds it.
    if (config_.max_pending_requests > 0 &&
        inflight_ + queue_.size() >= config_.max_pending_requests) {
      throw ServiceOverloadedError(config_.max_pending_requests);
    }
    queue_.push_back(QueuedJob{std::move(session), std::move(run)});
  }
  queue_cv_.notify_all();
}

void ResilienceService::FinishRequest(Session& session) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    session.active = false;
    --inflight_;
  }
  queue_cv_.notify_all();
}

SessionId ResilienceService::OpenSession(const FederationSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      throw std::runtime_error("ResilienceService: shut down");
    }
  }
  auto session = std::make_shared<Session>(spec);
  const SessionId id = next_session_id_.fetch_add(1);
  session->id = id;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace(id, std::move(session));
  return id;
}

void ResilienceService::CloseSession(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.erase(id) == 0) {
    throw std::invalid_argument("ResilienceService: unknown session " +
                                std::to_string(id));
  }
}

std::size_t ResilienceService::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::shared_ptr<ResilienceService::Session> ResilienceService::FindSession(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("ResilienceService: unknown session " +
                                std::to_string(id));
  }
  return it->second;
}

void ResilienceService::SyncReplica(Worker& worker) {
  if (worker.epoch == weight_epoch_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(master_mu_);
  nn::CopyParameters(master_->network(), worker.replica->network());
  worker.epoch = weight_epoch_.load(std::memory_order_acquire);
}

RepairResponse ResilienceService::Repair(SessionId id,
                                         const RepairRequest& request) {
  return Repair(id, request.current, request.failed_brokers,
                request.snapshot);
}

RepairResponse ResilienceService::Repair(
    SessionId id, const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  const std::shared_ptr<Session> session = FindSession(id);
  std::promise<RepairResponse> promise;
  auto future = promise.get_future();
  // The caller blocks on the future, so the request pieces and the
  // promise stay alive for every step of the pipeline — borrowing them
  // avoids copying the topology/snapshot.
  if (config_.pipeline && config_.cross_session_batching) {
    auto pipe = std::make_shared<RepairPipeline>();
    pipe->session = session;
    pipe->current = &current;
    pipe->failed = &failed_brokers;
    pipe->snapshot = &snapshot;
    pipe->promise = &promise;
    Enqueue(session, [this, pipe](Worker&) { StartRepairPipeline(pipe); });
  } else {
    Enqueue(session, [this, session, &current, &failed_brokers, &snapshot,
                      &promise](Worker& worker) {
      try {
        promise.set_value(
            DoRepair(*session, current, failed_brokers, snapshot, worker));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
      FinishRequest(*session);
    });
  }
  return future.get();
}

ObserveResponse ResilienceService::Observe(SessionId id,
                                           const ObserveRequest& request) {
  return Observe(id, request.snapshot);
}

ObserveResponse ResilienceService::Observe(
    SessionId id, const sim::SystemSnapshot& snapshot) {
  const std::shared_ptr<Session> session = FindSession(id);
  std::promise<ObserveResponse> promise;
  auto future = promise.get_future();
  // Observations are a single step in either mode (no frontier to
  // stack): confidence, POT update, Gamma bookkeeping, maybe fine-tune.
  Enqueue(session, [this, session, &snapshot, &promise](Worker& worker) {
    try {
      promise.set_value(DoObserve(*session, snapshot, worker));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    FinishRequest(*session);
  });
  return future.get();
}

// --- the repair pipeline (event-driven steps) ---------------------------

void ResilienceService::StartRepairPipeline(
    const std::shared_ptr<RepairPipeline>& pipe) {
  pipe->t0 = Clock::now();
  try {
    pipe->job.emplace(*pipe->current, *pipe->failed, *pipe->snapshot,
                      pipe->session->cfg, &pipe->session->rng);
    if (pipe->job->done()) {
      // Nothing failed and nothing to optimize: only the confidence
      // score remains — park it for the next stacked flush.
      SubmitConfidence(pipe);
      return;
    }
    SubmitFrontier(pipe);
  } catch (...) {
    try {
      pipe->promise->set_exception(std::current_exception());
    } catch (...) {
      // Promise already satisfied: the failure happened after the
      // response was delivered; nothing more to report.
    }
    FinishRequest(*pipe->session);
  }
}

void ResilienceService::AdvanceRepairPipeline(
    const std::shared_ptr<RepairPipeline>& pipe,
    const std::vector<double>& scores) {
  try {
    pipe->job->Advance(scores);
    if (pipe->job->done()) {
      SubmitConfidence(pipe);
      return;
    }
    SubmitFrontier(pipe);
  } catch (...) {
    try {
      pipe->promise->set_exception(std::current_exception());
    } catch (...) {
    }
    FinishRequest(*pipe->session);
  }
}

void ResilienceService::SubmitFrontier(
    const std::shared_ptr<RepairPipeline>& pipe) {
  // Encoding runs on the compute step (outside any lock); only the park
  // itself synchronizes. The next idle worker flushes the pool.
  pipe->stage = RepairPipeline::Stage::kSearch;
  pipe->contexts =
      core::EncodeFrontier(pipe->session->encoder, *pipe->snapshot,
                           pipe->job->ProposeFrontier());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending_scores_.push_back(pipe);
  }
  queue_cv_.notify_all();
}

void ResilienceService::SubmitConfidence(
    const std::shared_ptr<RepairPipeline>& pipe) {
  // The search is over: record the decision and park the pipeline for
  // its confidence score. Encoding runs here (a compute step); the
  // Discriminate itself is stacked with every other pending decision in
  // the next flush, so finished repairs never issue lone kernel calls.
  pipe->stage = RepairPipeline::Stage::kConfidence;
  pipe->response.topology = pipe->job->result();
  if (pipe->job->proactive_acted()) {
    proactives_.fetch_add(1, std::memory_order_relaxed);
  }
  pipe->final_state = pipe->session->encoder.EncodeForTopology(
      *pipe->snapshot, pipe->response.topology);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending_scores_.push_back(pipe);
  }
  queue_cv_.notify_all();
}

void ResilienceService::FlushPendingScores(
    std::unique_lock<std::mutex>& lock, Worker& worker) {
  std::vector<std::shared_ptr<RepairPipeline>> batch =
      std::move(pending_scores_);
  pending_scores_.clear();
  lock.unlock();
  SyncReplica(worker);
  // Partition the pool: frontiers awaiting a generation pass, finished
  // decisions awaiting their confidence score. Both kinds stack across
  // sessions inside this one flush.
  std::vector<std::shared_ptr<RepairPipeline>> searching;
  std::vector<std::shared_ptr<RepairPipeline>> finishing;
  for (std::shared_ptr<RepairPipeline>& pipe : batch) {
    if (pipe->stage == RepairPipeline::Stage::kSearch) {
      searching.push_back(std::move(pipe));
    } else {
      finishing.push_back(std::move(pipe));
    }
  }
  std::vector<std::vector<double>> all_scores(searching.size());
  bool flush_failed = false;
  std::exception_ptr error;
  try {
    if (!searching.empty()) {
      // One stacked generation pass over every parked frontier; the GON
      // buckets mixed host counts internally (one kernel pass per H).
      std::vector<const nn::Matrix*> inits;
      std::vector<const core::EncodedState*> ctxs;
      for (const std::shared_ptr<RepairPipeline>& pipe : searching) {
        for (const core::EncodedState& ctx : pipe->contexts) {
          inits.push_back(&ctx.m);
          ctxs.push_back(&ctx);
        }
      }
      const std::vector<core::GenerationResult> gens =
          worker.replica->GenerateBatch(inits, ctxs);
      std::size_t pos = 0;
      for (std::size_t j = 0; j < searching.size(); ++j) {
        const RepairPipeline& pipe = *searching[j];
        all_scores[j].reserve(pipe.contexts.size());
        for (std::size_t c = 0; c < pipe.contexts.size(); ++c) {
          all_scores[j].push_back(core::QosObjective(
              gens[pos++].metrics, pipe.session->cfg.alpha,
              pipe.session->cfg.beta));
        }
      }
      // Stacking accounting: jobs of one host count share one kernel
      // pass.
      std::unordered_set<std::size_t> host_counts;
      std::uint64_t states = 0;
      for (const std::shared_ptr<RepairPipeline>& pipe : searching) {
        host_counts.insert(pipe->contexts.front().num_hosts());
        states += pipe->contexts.size();
      }
      pipeline_passes_.fetch_add(host_counts.size(),
                                 std::memory_order_relaxed);
      pipeline_jobs_.fetch_add(searching.size(), std::memory_order_relaxed);
      pipeline_states_.fetch_add(states, std::memory_order_relaxed);
    }
    if (!finishing.empty()) {
      // One stacked confidence pass over every finished decision
      // (bucketed by H inside DiscriminateBatch — exactly equal to the
      // lone Discriminate calls it replaces).
      std::vector<const core::EncodedState*> finals;
      std::unordered_set<std::size_t> host_counts;
      finals.reserve(finishing.size());
      for (const std::shared_ptr<RepairPipeline>& pipe : finishing) {
        finals.push_back(&pipe->final_state);
        host_counts.insert(pipe->final_state.num_hosts());
      }
      const std::vector<double> confidences =
          worker.replica->DiscriminateBatch(
              std::span<const core::EncodedState* const>(finals));
      for (std::size_t j = 0; j < finishing.size(); ++j) {
        finishing[j]->response.confidence = confidences[j];
      }
      confidence_passes_.fetch_add(host_counts.size(),
                                   std::memory_order_relaxed);
      confidence_jobs_.fetch_add(finishing.size(),
                                 std::memory_order_relaxed);
    }
  } catch (...) {
    flush_failed = true;
    error = std::current_exception();
  }
  if (flush_failed) {
    for (const auto* group : {&searching, &finishing}) {
      for (const std::shared_ptr<RepairPipeline>& pipe : *group) {
        try {
          pipe->promise->set_exception(error);
        } catch (...) {
        }
        FinishRequest(*pipe->session);
      }
    }
    lock.lock();
    return;
  }
  // Completed decisions answer right here; searching pipelines get their
  // next step scheduled.
  for (const std::shared_ptr<RepairPipeline>& pipe : finishing) {
    pipe->response.decision_ns = NsSince(pipe->t0);
    repairs_.fetch_add(1, std::memory_order_relaxed);
    pipe->promise->set_value(std::move(pipe->response));
    FinishRequest(*pipe->session);
  }
  lock.lock();
  for (std::size_t j = 0; j < searching.size(); ++j) {
    ready_.push_back([this, pipe = searching[j],
                      scores = std::move(all_scores[j])](Worker&) {
      AdvanceRepairPipeline(pipe, scores);
    });
  }
  queue_cv_.notify_all();
}

// --- legacy run-to-completion path --------------------------------------

RepairResponse ResilienceService::DoRepair(
    Session& session, const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot, Worker& worker) {
  // Exclusive session access: the scheduler never serves two requests of
  // one session concurrently (Session::active).
  SyncReplica(worker);
  const auto start = Clock::now();
  const core::TopologyBatchScoreFn score =
      [&](const std::vector<sim::Topology>& frontier) {
        return ScoreFrontier(session, frontier, snapshot, worker);
      };
  RepairResponse response;
  bool proactive_acted = false;
  response.topology =
      core::PlanDecision(current, failed_brokers, snapshot, session.cfg,
                         session.rng, score, &proactive_acted);
  if (proactive_acted) {
    proactives_.fetch_add(1, std::memory_order_relaxed);
  }
  const core::EncodedState encoded =
      session.encoder.EncodeForTopology(snapshot, response.topology);
  response.confidence = worker.replica->Discriminate(encoded);
  response.decision_ns = NsSince(start);
  repairs_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

ObserveResponse ResilienceService::DoObserve(
    Session& session, const sim::SystemSnapshot& snapshot, Worker& worker) {
  // Exclusive session access: see DoRepair.
  SyncReplica(worker);
  const auto start = Clock::now();
  const core::ConfidenceGate::Outcome outcome =
      session.gate.Observe(*worker.replica, session.encoder, snapshot);
  ObserveResponse response;
  response.confidence = outcome.confidence;
  response.threshold = outcome.threshold;
  if (outcome.finetune && !session.gate.gamma().empty()) {
    // Confidence breach: fine-tune the MASTER on this session's Gamma and
    // bump the weight epoch; every replica (including this worker's, right
    // here) re-syncs before serving its next step.
    std::lock_guard<std::mutex> master_lock(master_mu_);
    master_->FineTune(session.gate.gamma(), session.cfg.finetune_epochs);
    weight_epoch_.fetch_add(1, std::memory_order_release);
    if (session.cfg.policy == core::FineTunePolicy::kConfidence) {
      session.gate.ClearGamma();  // Algorithm 2 line 16
    }
    nn::CopyParameters(master_->network(), worker.replica->network());
    worker.epoch = weight_epoch_.load(std::memory_order_acquire);
    finetunes_.fetch_add(1, std::memory_order_relaxed);
    response.fine_tuned = true;
  }
  response.observe_ns = NsSince(start);
  observes_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::vector<double> ResilienceService::ScoreFrontier(
    Session& session, const std::vector<sim::Topology>& frontier,
    const sim::SystemSnapshot& snapshot, Worker& worker) {
  if (frontier.empty()) return {};
  std::vector<core::EncodedState> contexts =
      core::EncodeFrontier(session.encoder, snapshot, frontier);
  if (!config_.cross_session_batching || config_.batch_linger_us <= 0 ||
      workers_.size() <= 1) {
    // A zero-length linger window can never observe a peer's job — and
    // neither can a sole worker, which would otherwise sleep out the
    // full window on every frontier — so skip the batcher's
    // queue/promise machinery entirely.
    return core::ScoreEncoded(*worker.replica, contexts, session.cfg.alpha,
                              session.cfg.beta);
  }
  return batcher_->Execute(std::move(contexts), session.cfg.alpha,
                           session.cfg.beta, worker.epoch, *worker.replica);
}

// --- surrogate management / introspection -------------------------------

std::vector<core::EpochStats> ResilienceService::TrainOffline(
    const workload::Trace& trace, int max_epochs) {
  std::vector<core::EncodedState> data;
  data.reserve(trace.size());
  const core::FeatureEncoder encoder;
  for (const auto& record : trace) {
    data.push_back(encoder.EncodeRecord(record));
  }
  std::lock_guard<std::mutex> lock(master_mu_);
  auto stats = master_->Train(data, max_epochs);
  weight_epoch_.fetch_add(1, std::memory_order_release);
  return stats;
}

void ResilienceService::LoadWeights(const std::string& path) {
  std::lock_guard<std::mutex> lock(master_mu_);
  nn::LoadParameters(master_->network(), path);
  weight_epoch_.fetch_add(1, std::memory_order_release);
}

void ResilienceService::SaveWeights(const std::string& path) {
  std::lock_guard<std::mutex> lock(master_mu_);
  nn::SaveParameters(master_->network(), path);
}

ServiceStats ResilienceService::stats() const {
  ServiceStats s;
  s.repairs = repairs_.load();
  s.observes = observes_.load();
  s.finetunes = finetunes_.load();
  s.proactive_optimizations = proactives_.load();
  s.score_batches = batcher_->score_batches();
  s.stacked_jobs = batcher_->stacked_jobs();
  s.pipeline_passes = pipeline_passes_.load();
  s.pipeline_jobs = pipeline_jobs_.load();
  s.pipeline_states = pipeline_states_.load();
  s.confidence_passes = confidence_passes_.load();
  s.confidence_jobs = confidence_jobs_.load();
  s.weight_epoch = weight_epoch_.load();
  return s;
}

double ResilienceService::MemoryFootprintMb() const {
  // Master + one replica per worker shard...
  double mb = master_->MemoryFootprintMb() *
              (1.0 + static_cast<double>(workers_.size()));
  // ...plus every session's Gamma budget (16-host states, as CarolModel).
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    mb += core::GammaStateBytes() *
          static_cast<double>(session->cfg.gamma_capacity) /
          (1024.0 * 1024.0);
  }
  return mb;
}

// --- SessionModel -------------------------------------------------------

SessionModel::SessionModel(ResilienceService& service,
                           const FederationSpec& spec)
    : service_(&service),
      id_(service.OpenSession(spec)),
      name_(spec.name),
      gamma_capacity_(spec.carol.gamma_capacity) {}

SessionModel::~SessionModel() {
  try {
    service_->CloseSession(id_);
  } catch (...) {
    // Session already closed or service shut down: nothing to release.
  }
}

sim::Topology SessionModel::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  RepairResponse response =
      service_->Repair(id_, current, failed_brokers, snapshot);
  decision_ns_.push_back(response.decision_ns);
  return std::move(response.topology);
}

void SessionModel::Observe(const sim::SystemSnapshot& snapshot) {
  const ObserveResponse response = service_->Observe(id_, snapshot);
  if (response.fine_tuned) ++finetunes_;
}

double SessionModel::MemoryFootprintMb() const {
  // This session's share: the shared surrogate plus its own Gamma budget
  // (mirrors CarolModel::MemoryFootprintMb for comparability).
  return service_->master_gon().MemoryFootprintMb() +
         core::GammaStateBytes() * static_cast<double>(gamma_capacity_) /
             (1024.0 * 1024.0);
}

}  // namespace carol::serve
