#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <span>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/binio.h"
#include "core/bucket.h"
#include "core/subgraph.h"
#include "nn/serialize.h"

namespace carol::serve {

namespace {
using Clock = std::chrono::steady_clock;

std::int64_t NsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}
}  // namespace

// --- internal state -----------------------------------------------------

// A repair suspended mid-search by a drain: the complete resumable job
// state plus the request identity it belongs to. The original caller
// got ServiceSuspendedError; when the SAME request (same current
// topology, same failed-broker list — verified on resume) is re-issued
// against the restored service, the search continues from exactly this
// point. The snapshot itself is NOT stored: the re-issued request
// supplies it, and the captured state already embeds everything the
// search derived from it (alive mask, start topology, tabu state).
struct ResilienceService::ParkedRepair {
  std::vector<sim::NodeId> current;  // request topology, as assignment
  std::vector<sim::NodeId> failed;
  core::RepairJobState job;
  // Scoped (subgraph-extracted) repairs park the SUB-space job state
  // plus the scope that produced the extraction. Resume re-runs the
  // (deterministic) extraction from the re-issued request and restores
  // the inner job into it — the scope is part of the request identity.
  bool scoped = false;
  RepairScope scope;
};

// Per-federation controller state. Everything here is cheap; the GON
// surrogate is shared by every session (see header comment).
struct ResilienceService::Session {
  explicit Session(const FederationSpec& spec)
      : name(spec.name),
        cfg(spec.carol),
        gate(spec.carol),
        rng(spec.carol.seed) {
    // Serve sessions are long-running and nothing reads the Figure-2
    // series through the service API — don't grow it forever.
    gate.set_record_history(false);
  }

  SessionId id = 0;
  std::string name;
  core::CarolConfig cfg;
  core::FeatureEncoder encoder;
  core::ConfidenceGate gate;
  common::Rng rng;
  // True while a request of this session is in flight — from the moment
  // a worker pops its start step until its response promise is
  // satisfied, across every pipeline step in between. Guarded by the
  // service's queue_mu_. The scheduler holds back queued requests of
  // active sessions, so session work is exclusive AND in FIFO submission
  // order without a per-session lock that could park worker threads.
  bool active = false;
  // Admitted-but-unfinished requests of this session (the
  // max_pending_per_session quota counter). Guarded by queue_mu_.
  std::size_t pending = 0;
  // Mid-repair state captured by a drain, waiting for the request to be
  // re-issued. Guarded by queue_mu_.
  std::unique_ptr<ParkedRepair> parked;
};

// A worker shard: one thread, one GonModel replica. The replica is only
// ever touched by its own thread (plus the master-locked weight sync).
struct ResilienceService::Worker {
  std::unique_ptr<core::GonModel> replica;
  std::uint64_t epoch = 0;  // last weight epoch copied from the master
  // This worker's registry shard (worker i -> shard i + 1; shard 0 is
  // reserved for client/master threads). Recording into one's own shard
  // is what keeps the hot path lock- and contention-free.
  std::size_t obs_shard = 0;
  std::thread thread;
};

// Timing instrumentation (ServiceConfig::observability): one histogram
// registry sharded num_workers + 1 ways plus the bounded trace ring.
// Everything here is registered in the constructor, before any worker
// thread starts — the registry's "register before traffic" contract.
struct ResilienceService::Obs {
  obs::Registry registry;
  obs::TraceRing traces;
  // Request-level latency distributions.
  std::size_t h_repair_queue_ns;     // submit -> first step popped
  std::size_t h_repair_decision_ns;  // == RepairResponse::decision_ns
  std::size_t h_observe_queue_ns;    // submit -> observe step popped
  std::size_t h_observe_ns;          // == ObserveResponse::observe_ns
  // Pipeline stage distributions (one sample per completed repair).
  std::size_t h_encode_ns;
  std::size_t h_score_wait_ns;
  std::size_t h_splice_ns;
  std::size_t h_confidence_wait_ns;
  // Flush kernel distributions (one sample per stacked pass group).
  std::size_t h_flush_generate_ns;
  std::size_t h_flush_confidence_ns;

  Obs(std::size_t shards, std::size_t trace_capacity)
      : registry(shards), traces(trace_capacity) {
    h_repair_queue_ns = registry.AddHistogram("repair_queue_ns");
    h_repair_decision_ns = registry.AddHistogram("repair_decision_ns");
    h_observe_queue_ns = registry.AddHistogram("observe_queue_ns");
    h_observe_ns = registry.AddHistogram("observe_ns");
    h_encode_ns = registry.AddHistogram("repair_encode_ns");
    h_score_wait_ns = registry.AddHistogram("repair_score_wait_ns");
    h_splice_ns = registry.AddHistogram("repair_splice_ns");
    h_confidence_wait_ns = registry.AddHistogram("repair_confidence_wait_ns");
    h_flush_generate_ns = registry.AddHistogram("flush_generate_ns");
    h_flush_confidence_ns = registry.AddHistogram("flush_confidence_ns");
  }
};

// One in-flight pipelined repair: the resumable core::RepairJob plus the
// request/response plumbing. The blocking caller owns the request pieces
// and the promise; steps reference the pipeline via shared_ptr. Fields
// are only ever touched by the single step currently executing for this
// pipeline — step hand-offs synchronize through queue_mu_.
struct ResilienceService::RepairPipeline {
  // Which scoring the parked pipeline is waiting for: its candidate
  // frontier (GenerateBatch) or — once the search finished — the final
  // per-decision confidence (DiscriminateBatch). Both ride the same
  // flush pass, so the confidence gate stacks across sessions too.
  enum class Stage { kSearch, kConfidence };

  std::shared_ptr<Session> session;
  const sim::Topology* current = nullptr;
  const std::vector<sim::NodeId>* failed = nullptr;
  const sim::SystemSnapshot* snapshot = nullptr;
  std::promise<RepairResponse>* promise = nullptr;
  Clock::time_point t0{};
  // Absolute deadline (default-constructed = none), checked at every
  // step boundary.
  Clock::time_point deadline{};
  std::optional<core::RepairJob> job;
  // Scoped mode: the request's scope (owned — it must survive parking)
  // and the subgraph-extracted job that replaces `job`. Exactly one of
  // job/scoped_job is engaged per pipeline. ScopedRepairJob is
  // heap-held because it is non-movable (it borrows its own members).
  std::optional<RepairScope> scope;
  std::unique_ptr<core::ScopedRepairJob> scoped_job;
  Stage stage = Stage::kSearch;
  // The encoded pending frontier, parked in the pending-score pool.
  std::vector<core::EncodedState> contexts;
  // kConfidence: the decided topology's encoding + the response being
  // assembled (confidence filled by the flush).
  core::EncodedState final_state;
  RepairResponse response;
  // --- observability (only written when the service's obs layer is on;
  // same single-executing-step ownership as everything above — the
  // submit stamp is written by the client thread before Enqueue's
  // queue_mu_ handoff publishes the pipeline) ---
  Clock::time_point submit{};     // Repair() admission time
  Clock::time_point step_begin{}; // start of the current compute step
  Clock::time_point parked_at{};  // last ParkOrSubmit deposit time
  obs::DecisionTrace trace;       // stage accumulators, pushed at completion

  // Mode dispatch: the scheduler/flush code never cares which job kind
  // is driving, only these.
  bool JobDone() const { return scoped_job ? scoped_job->done() : job->done(); }
  const std::vector<sim::Topology>& Frontier() const {
    return scoped_job ? scoped_job->ProposeFrontier() : job->ProposeFrontier();
  }
  void AdvanceJob(const std::vector<double>& scores) {
    if (scoped_job) {
      scoped_job->Advance(scores);
    } else {
      job->Advance(scores);
    }
  }
  // What frontiers (and the decided state) are scored against: the
  // H_sub-row sub snapshot in scoped mode, the request snapshot else.
  const sim::SystemSnapshot& ScoringSnapshot() const {
    return scoped_job ? scoped_job->scoring_snapshot() : *snapshot;
  }
  sim::Topology JobResult() const {
    return scoped_job ? scoped_job->result() : job->result();
  }
  bool ProactiveActed() const {
    return scoped_job ? scoped_job->proactive_acted() : job->proactive_acted();
  }
  core::RepairJobState SaveJobState() const {
    return scoped_job ? scoped_job->SaveState() : job->SaveState();
  }
};

// LEGACY cross-session bucketing queue (pipeline == false): candidate-
// scoring jobs from concurrently repairing sessions are claimed in
// batches after a linger window, grouped by host count, and each H
// bucket runs as ONE stacked GenerateBatch pass. Batched GON passes
// equal sequential ones exactly, so results are independent of batch
// composition — stacking is purely a kernel-efficiency play.
class ResilienceService::ScoreBatcher {
 public:
  ScoreBatcher(std::size_t max_jobs, int linger_us)
      : max_jobs_(max_jobs), linger_us_(linger_us) {}

  // Submits one job (a session's frontier, already encoded), optionally
  // lingers to let concurrent submitters pile on, then claims its own
  // job plus every pending job tagged with the SAME weight epoch — a
  // claimer may only execute jobs on its replica when the submitter saw
  // identical weights, otherwise stacking could serve stale parameters
  // and break the bit-identity guarantee. A job claimed by another
  // thread is simply awaited; epoch-mismatched jobs stay queued for
  // their own submitters, so nothing is orphaned.
  std::vector<double> Execute(std::vector<core::EncodedState> contexts,
                              double alpha, double beta,
                              std::uint64_t epoch,
                              core::GonModel& replica) {
    auto job = std::make_shared<ScoreJob>();
    job->host_count = contexts.front().m.rows();
    job->contexts = std::move(contexts);
    job->alpha = alpha;
    job->beta = beta;
    job->epoch = epoch;
    auto future = job->promise.get_future();
    std::vector<std::shared_ptr<ScoreJob>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push_back(job);
      cv_.notify_all();
      if (linger_us_ > 0 && queue_.size() < max_jobs_) {
        cv_.wait_for(lock, std::chrono::microseconds(linger_us_), [&] {
          return job->claimed || queue_.size() >= max_jobs_;
        });
      }
      if (!job->claimed) {
        // Claim our own job FIRST — filling the batch from the queue
        // front could otherwise hit max_jobs_ before reaching it,
        // leaving it orphaned (and this thread blocked forever below).
        job->claimed = true;
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (*it == job) {
            queue_.erase(it);
            break;
          }
        }
        batch.push_back(job);
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < max_jobs_;) {
          if ((*it)->epoch == epoch) {
            (*it)->claimed = true;
            batch.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    if (!batch.empty()) {
      cv_.notify_all();  // wake lingerers whose jobs we just claimed
      RunBatch(batch, replica);
    }
    return future.get();
  }

  std::uint64_t score_batches() const { return score_batches_.load(); }
  std::uint64_t stacked_jobs() const { return stacked_jobs_.load(); }

 private:
  struct ScoreJob {
    std::vector<core::EncodedState> contexts;
    double alpha = 0.5;
    double beta = 0.5;
    std::size_t host_count = 0;
    std::uint64_t epoch = 0;  // submitter's replica weight epoch
    bool claimed = false;     // guarded by mu_
    std::promise<std::vector<double>> promise;
  };

  void RunBatch(std::vector<std::shared_ptr<ScoreJob>>& batch,
                core::GonModel& replica) {
    const auto buckets = core::GroupIndicesBy(
        batch.size(),
        [&](std::size_t i) { return batch[i]->host_count; });
    std::vector<const nn::Matrix*> inits;
    std::vector<const core::EncodedState*> ctxs;
    for (const auto& bucket : buckets) {
      inits.clear();
      ctxs.clear();
      for (std::size_t j : bucket) {
        for (const core::EncodedState& ctx : batch[j]->contexts) {
          inits.push_back(&ctx.m);
          ctxs.push_back(&ctx);
        }
      }
      // Promises are only touched after ALL per-job results exist, and
      // the catch covers exactly the not-yet-satisfied tail — calling
      // set_exception on an already-satisfied promise would itself throw
      // and orphan the remaining jobs' waiters forever.
      std::size_t done = 0;
      try {
        const std::vector<core::GenerationResult> gens =
            replica.GenerateBatch(inits, ctxs);
        std::vector<std::vector<double>> all_scores(bucket.size());
        std::size_t pos = 0;
        for (std::size_t b = 0; b < bucket.size(); ++b) {
          const ScoreJob& j = *batch[bucket[b]];
          all_scores[b].reserve(j.contexts.size());
          for (std::size_t c = 0; c < j.contexts.size(); ++c) {
            all_scores[b].push_back(core::QosObjective(
                gens[pos++].metrics, j.alpha, j.beta));
          }
        }
        for (; done < bucket.size(); ++done) {
          batch[bucket[done]]->promise.set_value(
              std::move(all_scores[done]));
        }
      } catch (...) {
        for (std::size_t b = done; b < bucket.size(); ++b) {
          batch[bucket[b]]->promise.set_exception(std::current_exception());
        }
      }
      score_batches_.fetch_add(1, std::memory_order_relaxed);
      if (bucket.size() > 1) {
        stacked_jobs_.fetch_add(bucket.size(), std::memory_order_relaxed);
      }
    }
  }

  std::size_t max_jobs_;
  int linger_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ScoreJob>> queue_;
  std::atomic<std::uint64_t> score_batches_{0};
  std::atomic<std::uint64_t> stacked_jobs_{0};
};

// --- service ------------------------------------------------------------

ResilienceService::ResilienceService(const ServiceConfig& config)
    : config_(config) {
  if (config_.num_workers < 1) {
    throw std::invalid_argument("ResilienceService: num_workers must be >= 1");
  }
  // Per-replica attention threading. The master never runs the
  // tape-free threaded scoring path (it only trains/fine-tunes/saves),
  // so it gets no pool — only the replicas do. Thread count never
  // changes values, so the mixed sizing is invisible to results.
  if (config_.attention_threads > 1) {
    config_.gon.attention_threads = config_.attention_threads;
  }
  core::GonConfig master_cfg = config_.gon;
  master_cfg.attention_threads = 1;
  master_ = std::make_unique<core::GonModel>(master_cfg);
  batcher_ = std::make_unique<ScoreBatcher>(
      std::max<std::size_t>(1, config_.max_batch_jobs),
      config_.batch_linger_us);
  if (config_.observability) {
    // Shard 0 belongs to client/master threads, worker i to shard i+1.
    // Built (and fully registered) before any worker thread starts.
    obs_ = std::make_unique<Obs>(
        static_cast<std::size_t>(config_.num_workers) + 1,
        config_.trace_capacity);
  }
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    // Same config (and seed) as the master => identical initial weights,
    // so epoch 0 needs no copy.
    worker->replica = std::make_unique<core::GonModel>(config_.gon);
    worker->obs_shard = static_cast<std::size_t>(i) + 1;
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(*w); });
  }
}

ResilienceService::ResilienceService(const ServiceConfig& config,
                                     std::istream& snapshot)
    : ResilienceService(config) {
  try {
    RestoreFromSnapshot(snapshot);
  } catch (...) {
    Shutdown();  // the delegated ctor started workers; stop them
    throw;
  }
}

ResilienceService::ResilienceService(const ServiceConfig& config,
                                     const std::string& snapshot_path)
    : ResilienceService(config) {
  try {
    std::ifstream in(snapshot_path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("ResilienceService: cannot open snapshot " +
                               snapshot_path);
    }
    RestoreFromSnapshot(in);
  } catch (...) {
    Shutdown();
    throw;
  }
}

ResilienceService::~ResilienceService() { Shutdown(); }

void ResilienceService::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  shut_down_ = true;
}

void ResilienceService::WorkerLoop(Worker& worker) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] {
      if (!ready_.empty() || !pending_scores_.empty()) return true;
      for (const QueuedJob& job : queue_) {
        if (!job.session->active) return true;
      }
      return stopping_ && queue_.empty() && inflight_ == 0;
    });
    // Scheduling policy, in priority order:
    //   0. expire queued requests whose deadline passed (typed failure,
    //      never a silent drop);
    //   1. resumed pipeline steps — they complete in-flight repairs and
    //      deposit fresh frontiers into the pending-score pool;
    //   2. new requests — the earliest queued REPAIR whose session is
    //      idle, then the earliest such Observe: repairs restore broken
    //      topologies and take precedence over routine confidence
    //      bookkeeping (still FIFO within each class, and a session
    //      already being served never parks this worker);
    //   3. a stacked scoring pass over EVERYTHING pending.
    // A worker only flushes when no compute step is runnable, so
    // frontiers pile up exactly while peers have other work — stacking
    // with zero wall-clock lingering.
    if (ExpireQueuedDeadlines(lock)) continue;
    if (!ready_.empty()) {
      std::function<void(Worker&)> step = std::move(ready_.front());
      ready_.pop_front();
      lock.unlock();
      step(worker);
      lock.lock();
      continue;
    }
    auto runnable = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->session->active) continue;
      if (it->is_repair) {
        runnable = it;
        break;
      }
      if (runnable == queue_.end()) runnable = it;
    }
    if (runnable != queue_.end()) {
      QueuedJob job = std::move(*runnable);
      queue_.erase(runnable);
      job.session->active = true;
      ++inflight_;
      lock.unlock();
      job.run(worker);
      lock.lock();
      continue;
    }
    if (!pending_scores_.empty()) {
      FlushPendingScores(lock, worker);  // unlocks while running kernels
      continue;
    }
    if (stopping_ && queue_.empty() && ready_.empty() &&
        pending_scores_.empty() && inflight_ == 0) {
      return;
    }
  }
}

void ResilienceService::Enqueue(std::shared_ptr<Session> session,
                                std::function<void(Worker&)> run,
                                bool is_repair, Clock::time_point deadline,
                                std::function<void(std::exception_ptr)> fail) {
  std::function<void(std::exception_ptr)> evicted;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      throw std::runtime_error("ResilienceService: shut down");
    }
    if (draining_) {
      suspended_.fetch_add(1, std::memory_order_relaxed);
      throw ServiceSuspendedError();
    }
    // Per-tenant quota first: one chatty session never gets to trigger
    // global shedding against everyone else's traffic.
    if (config_.max_pending_per_session > 0 &&
        session->pending >= config_.max_pending_per_session) {
      quota_rejections_.fetch_add(1, std::memory_order_relaxed);
      throw ServiceOverloadedError(config_.max_pending_per_session,
                                   session->id);
    }
    // Admission control: every admitted request is either still queued
    // or in flight (inflight_ covers all of a pipeline's steps), so
    // their sum is the service's total outstanding work. Rejecting here
    // — before the queue grows — is what bounds it. Shedding is
    // priority-aware: Observe load sheds first, repairs shed only when
    // the backlog holds nothing to displace.
    if (config_.max_pending_requests > 0 &&
        inflight_ + queue_.size() >= config_.max_pending_requests) {
      if (!is_repair) {
        shed_observes_.fetch_add(1, std::memory_order_relaxed);
        throw ServiceOverloadedError(config_.max_pending_requests);
      }
      // An arriving repair displaces the newest queued Observe (newest:
      // its caller has waited least), whose caller gets the overload
      // error instead.
      auto victim = queue_.end();
      for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
        if (!it->is_repair) {
          victim = std::next(it).base();
          break;
        }
      }
      if (victim == queue_.end()) {
        shed_repairs_.fetch_add(1, std::memory_order_relaxed);
        throw ServiceOverloadedError(config_.max_pending_requests);
      }
      shed_observes_.fetch_add(1, std::memory_order_relaxed);
      --victim->session->pending;
      evicted = std::move(victim->fail);
      queue_.erase(victim);
    }
    ++session->pending;
    queue_.push_back(QueuedJob{std::move(session), std::move(run), is_repair,
                               deadline, std::move(fail)});
  }
  queue_cv_.notify_all();
  if (evicted) {
    evicted(std::make_exception_ptr(
        ServiceOverloadedError(config_.max_pending_requests)));
  }
}

void ResilienceService::FinishRequest(Session& session) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    session.active = false;
    --session.pending;
    --inflight_;
  }
  queue_cv_.notify_all();
}

bool ResilienceService::ExpireQueuedDeadlines(
    std::unique_lock<std::mutex>& lock) {
  // Only queued (not-yet-started) requests expire here; running
  // pipelines check their own deadline at every step boundary.
  std::vector<std::function<void(std::exception_ptr)>> expired;
  const Clock::time_point now = Clock::now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline != Clock::time_point{} && now >= it->deadline) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      --it->session->pending;
      expired.push_back(std::move(it->fail));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  if (expired.empty()) return false;
  lock.unlock();
  for (auto& fail : expired) {
    fail(std::make_exception_ptr(ServiceTimeoutError()));
  }
  lock.lock();
  return true;
}

void ResilienceService::BeginDrain() {
  std::deque<QueuedJob> dropped;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      throw std::runtime_error("ResilienceService: shut down");
    }
    draining_ = true;
    dropped.swap(queue_);
    for (QueuedJob& job : dropped) --job.session->pending;
  }
  queue_cv_.notify_all();
  for (QueuedJob& job : dropped) {
    suspended_.fetch_add(1, std::memory_order_relaxed);
    job.fail(std::make_exception_ptr(ServiceSuspendedError()));
  }
}

void ResilienceService::WaitDrained() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [&] {
    return queue_.empty() && ready_.empty() && pending_scores_.empty() &&
           inflight_ == 0;
  });
}

SessionId ResilienceService::OpenSession(const FederationSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      throw std::runtime_error("ResilienceService: shut down");
    }
  }
  auto session = std::make_shared<Session>(spec);
  const SessionId id = next_session_id_.fetch_add(1);
  session->id = id;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace(id, std::move(session));
  return id;
}

void ResilienceService::CloseSession(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.erase(id) == 0) {
    throw std::invalid_argument("ResilienceService: unknown session " +
                                std::to_string(id));
  }
}

std::size_t ResilienceService::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::shared_ptr<ResilienceService::Session> ResilienceService::FindSession(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("ResilienceService: unknown session " +
                                std::to_string(id));
  }
  return it->second;
}

void ResilienceService::SyncReplica(Worker& worker) {
  if (worker.epoch == weight_epoch_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(master_mu_);
  nn::CopyParameters(master_->network(), worker.replica->network());
  worker.epoch = weight_epoch_.load(std::memory_order_acquire);
}

namespace {

// Absolute expiry for a relative microsecond budget (0 = no deadline).
Clock::time_point DeadlineFor(std::int64_t deadline_us) {
  if (deadline_us <= 0) return Clock::time_point{};
  return Clock::now() + std::chrono::microseconds(deadline_us);
}

bool Expired(Clock::time_point deadline) {
  return deadline != Clock::time_point{} && Clock::now() >= deadline;
}

}  // namespace

RepairResponse ResilienceService::Repair(SessionId id,
                                         const RepairRequest& request) {
  return Repair(id, request.current, request.failed_brokers,
                request.snapshot, request.deadline_us,
                request.scope ? &*request.scope : nullptr);
}

RepairResponse ResilienceService::Repair(
    SessionId id, const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot, std::int64_t deadline_us,
    const RepairScope* scope) {
  const std::shared_ptr<Session> session = FindSession(id);
  // Effective scope: an explicit request scope wins; otherwise a session
  // whose CarolConfig enables scoped repair gets a hintless scope (the
  // failed LEIs plus budget fill — same default as CarolModel).
  std::optional<RepairScope> effective_scope;
  if (scope != nullptr) {
    effective_scope = *scope;
  } else if (session->cfg.scoped.enabled) {
    effective_scope = RepairScope{session->cfg.scoped, {}};
  }
  const Clock::time_point deadline = DeadlineFor(deadline_us);
  std::promise<RepairResponse> promise;
  auto future = promise.get_future();
  // The caller blocks on the future, so the request pieces and the
  // promise stay alive for every step of the pipeline — borrowing them
  // avoids copying the topology/snapshot.
  if (config_.pipeline && config_.cross_session_batching) {
    auto pipe = std::make_shared<RepairPipeline>();
    pipe->session = session;
    pipe->current = &current;
    pipe->failed = &failed_brokers;
    pipe->snapshot = &snapshot;
    pipe->promise = &promise;
    pipe->deadline = deadline;
    pipe->scope = std::move(effective_scope);
    if (obs_) {
      pipe->submit = Clock::now();
      pipe->trace.session = id;
      pipe->trace.scoped = pipe->scope.has_value();
    }
    Enqueue(
        session, [this, pipe](Worker&) { StartRepairPipeline(pipe); },
        /*is_repair=*/true, deadline, [pipe](std::exception_ptr e) {
          try {
            pipe->promise->set_exception(std::move(e));
          } catch (...) {
          }
        });
  } else {
    {
      // A parked repair embeds step-boundary state only the pipeline
      // scheduler can resume.
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (session->parked) {
        throw std::logic_error(
            "ResilienceService: session holds a parked repair; resuming "
            "requires the pipeline scheduler (ServiceConfig::pipeline)");
      }
    }
    Enqueue(
        session,
        [this, session, &current, &failed_brokers, &snapshot, &promise,
         deadline, eff = std::move(effective_scope),
         submit = obs_ ? Clock::now() : Clock::time_point{}](Worker& worker) {
          if (obs_) {
            obs_->registry.Record(obs_->h_repair_queue_ns, worker.obs_shard,
                                  static_cast<std::uint64_t>(NsSince(submit)));
          }
          RepairResponse response;
          std::exception_ptr error;
          try {
            if (Expired(deadline)) {
              timeouts_.fetch_add(1, std::memory_order_relaxed);
              throw ServiceTimeoutError();
            }
            response = DoRepair(*session, current, failed_brokers, snapshot,
                                eff ? &*eff : nullptr, worker);
          } catch (...) {
            error = std::current_exception();
          }
          // Free the admission slot BEFORE waking the caller: a woken
          // client may submit its next request immediately, and exact
          // accounting requires it to see this slot already released.
          FinishRequest(*session);
          if (error) {
            promise.set_exception(std::move(error));
          } else {
            promise.set_value(std::move(response));
          }
        },
        /*is_repair=*/true, deadline, [&promise](std::exception_ptr e) {
          try {
            promise.set_exception(std::move(e));
          } catch (...) {
          }
        });
  }
  return future.get();
}

ObserveResponse ResilienceService::Observe(SessionId id,
                                           const ObserveRequest& request) {
  return Observe(id, request.snapshot, request.deadline_us);
}

ObserveResponse ResilienceService::Observe(SessionId id,
                                           const sim::SystemSnapshot& snapshot,
                                           std::int64_t deadline_us) {
  const std::shared_ptr<Session> session = FindSession(id);
  const Clock::time_point deadline = DeadlineFor(deadline_us);
  std::promise<ObserveResponse> promise;
  auto future = promise.get_future();
  // Observations are a single step in either mode (no frontier to
  // stack): confidence, POT update, Gamma bookkeeping, maybe fine-tune.
  Enqueue(
      session,
      [this, session, &snapshot, &promise, deadline,
       submit = obs_ ? Clock::now() : Clock::time_point{}](Worker& worker) {
        if (obs_) {
          obs_->registry.Record(obs_->h_observe_queue_ns, worker.obs_shard,
                                static_cast<std::uint64_t>(NsSince(submit)));
        }
        ObserveResponse response;
        std::exception_ptr error;
        try {
          if (Expired(deadline)) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            throw ServiceTimeoutError();
          }
          response = DoObserve(*session, snapshot, worker);
        } catch (...) {
          error = std::current_exception();
        }
        // Slot released before the caller wakes — see the Repair path.
        FinishRequest(*session);
        if (error) {
          promise.set_exception(std::move(error));
        } else {
          promise.set_value(std::move(response));
        }
      },
      /*is_repair=*/false, deadline, [&promise](std::exception_ptr e) {
        try {
          promise.set_exception(std::move(e));
        } catch (...) {
        }
      });
  return future.get();
}

// --- the repair pipeline (event-driven steps) ---------------------------

void ResilienceService::StartRepairPipeline(
    const std::shared_ptr<RepairPipeline>& pipe) {
  pipe->t0 = Clock::now();
  if (obs_) {
    // Queue wait ends here: a worker popped the start step. The encode
    // span of this step runs from t0 to the ParkOrSubmit deposit.
    pipe->trace.queue_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               pipe->t0 - pipe->submit)
                               .count();
    pipe->step_begin = pipe->t0;
  }
  if (Expired(pipe->deadline)) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    FinishRequest(*pipe->session);
    try {
      pipe->promise->set_exception(
          std::make_exception_ptr(ServiceTimeoutError()));
    } catch (...) {
    }
    return;
  }
  // A drain may have parked this session's previous repair mid-search;
  // the re-issued request picks the search up where it stopped.
  std::unique_ptr<ParkedRepair> parked;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    parked = std::move(pipe->session->parked);
  }
  try {
    if (parked) {
      const bool scope_matches =
          parked->scoped == pipe->scope.has_value() &&
          (!parked->scoped || parked->scope == *pipe->scope);
      if (parked->current != pipe->current->assignment() ||
          parked->failed != *pipe->failed || !scope_matches) {
        // Not the suspended request: put the state back and reject —
        // resuming under a different request would splice two searches.
        std::lock_guard<std::mutex> lock(queue_mu_);
        pipe->session->parked = std::move(parked);
        throw std::invalid_argument(
            "ResilienceService: session holds a parked repair for a "
            "different request; re-issue the suspended one first");
      }
      if (pipe->scope) {
        // Deterministic re-extraction from the re-issued request, then
        // the inner sub-space job restores into it.
        pipe->scoped_job = std::make_unique<core::ScopedRepairJob>(
            *pipe->current, *pipe->failed, *pipe->snapshot,
            pipe->scope->hints, pipe->scope->options, pipe->session->cfg,
            &pipe->session->rng, parked->job);
      } else {
        pipe->job.emplace(*pipe->failed, pipe->session->cfg,
                          &pipe->session->rng, parked->job);
      }
    } else if (pipe->scope) {
      pipe->scoped_job = std::make_unique<core::ScopedRepairJob>(
          *pipe->current, *pipe->failed, *pipe->snapshot,
          pipe->scope->hints, pipe->scope->options, pipe->session->cfg,
          &pipe->session->rng);
    } else {
      pipe->job.emplace(*pipe->current, *pipe->failed, *pipe->snapshot,
                        pipe->session->cfg, &pipe->session->rng);
    }
    if (pipe->JobDone()) {
      // Nothing failed and nothing to optimize (or an empty extraction):
      // only the confidence score remains — park it for the next
      // stacked flush.
      SubmitConfidence(pipe);
      return;
    }
    SubmitFrontier(pipe);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    FinishRequest(*pipe->session);
    try {
      pipe->promise->set_exception(error);
    } catch (...) {
      // Promise already satisfied: the failure happened after the
      // response was delivered; nothing more to report.
    }
  }
}

void ResilienceService::AdvanceRepairPipeline(
    const std::shared_ptr<RepairPipeline>& pipe,
    const std::vector<double>& scores) {
  if (Expired(pipe->deadline)) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    FinishRequest(*pipe->session);
    try {
      pipe->promise->set_exception(
          std::make_exception_ptr(ServiceTimeoutError()));
    } catch (...) {
    }
    return;
  }
  try {
    if (obs_) {
      // The gap since ParkOrSubmit is time spent waiting for a stacked
      // flush plus scheduler handoff — the pipeline's "queueing inside
      // the search" span.
      const Clock::time_point now = Clock::now();
      pipe->trace.score_wait_ns +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - pipe->parked_at)
              .count();
      pipe->step_begin = now;
      pipe->AdvanceJob(scores);
      const Clock::time_point spliced = Clock::now();
      pipe->trace.splice_ns +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              spliced - pipe->step_begin)
              .count();
      pipe->step_begin = spliced;
    } else {
      pipe->AdvanceJob(scores);
    }
    if (pipe->JobDone()) {
      SubmitConfidence(pipe);
      return;
    }
    SubmitFrontier(pipe);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    FinishRequest(*pipe->session);
    try {
      pipe->promise->set_exception(error);
    } catch (...) {
    }
  }
}

// Shared tail of SubmitFrontier/SubmitConfidence: deposit the pipeline
// into the pending-score pool — or, when a drain started, capture the
// job's state into the session and unwind the caller with
// ServiceSuspendedError. The park happens at a step boundary (frontier
// proposed, scores not yet supplied), which is exactly the state
// core::RepairJobState round-trips bit-identically.
void ResilienceService::ParkOrSubmit(
    const std::shared_ptr<RepairPipeline>& pipe) {
  bool parked = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_) {
      auto state = std::make_unique<ParkedRepair>();
      state->current = pipe->current->assignment();
      state->failed = *pipe->failed;
      state->job = pipe->SaveJobState();
      if (pipe->scope) {
        state->scoped = true;
        state->scope = *pipe->scope;
      }
      pipe->session->parked = std::move(state);
      parked = true;
    } else {
      pending_scores_.push_back(pipe);
    }
  }
  queue_cv_.notify_all();
  if (parked) {
    suspended_.fetch_add(1, std::memory_order_relaxed);
    FinishRequest(*pipe->session);
    try {
      pipe->promise->set_exception(
          std::make_exception_ptr(ServiceSuspendedError()));
    } catch (...) {
    }
  }
}

void ResilienceService::SubmitFrontier(
    const std::shared_ptr<RepairPipeline>& pipe) {
  // Encoding runs on the compute step (outside any lock); only the park
  // itself synchronizes. The next idle worker flushes the pool.
  pipe->stage = RepairPipeline::Stage::kSearch;
  // Scoped frontiers encode against the H_sub-row sub snapshot — the
  // GON never sees a full-H row — and stack with everything else via
  // the flush's per-H bucketing.
  pipe->contexts =
      core::EncodeFrontier(pipe->session->encoder, pipe->ScoringSnapshot(),
                           pipe->Frontier());
  if (obs_) {
    const Clock::time_point now = Clock::now();
    pipe->trace.encode_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - pipe->step_begin)
            .count();
    pipe->trace.frontier_rounds += 1;
    pipe->trace.states_scored +=
        static_cast<std::uint32_t>(pipe->contexts.size());
    pipe->parked_at = now;
  }
  ParkOrSubmit(pipe);
}

void ResilienceService::SubmitConfidence(
    const std::shared_ptr<RepairPipeline>& pipe) {
  // The search is over: record the decision and park the pipeline for
  // its confidence score. Encoding runs here (a compute step); the
  // Discriminate itself is stacked with every other pending decision in
  // the next flush, so finished repairs never issue lone kernel calls.
  pipe->stage = RepairPipeline::Stage::kConfidence;
  pipe->response.topology = pipe->JobResult();
  if (pipe->ProactiveActed()) {
    proactives_.fetch_add(1, std::memory_order_relaxed);
  }
  if (pipe->scoped_job && !pipe->scoped_job->subgraph().empty()) {
    // Confidence on the SUB decision vs the SUB snapshot: an H_sub
    // Discriminate instead of a full-H one. When the extraction covers
    // the whole federation this is the identical encoding, so the
    // scoped confidence matches the unscoped one bit for bit.
    pipe->final_state = pipe->session->encoder.EncodeForTopology(
        pipe->scoped_job->scoring_snapshot(), pipe->scoped_job->sub_result());
  } else {
    pipe->final_state = pipe->session->encoder.EncodeForTopology(
        *pipe->snapshot, pipe->response.topology);
  }
  if (obs_) {
    const Clock::time_point now = Clock::now();
    pipe->trace.encode_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - pipe->step_begin)
            .count();
    pipe->parked_at = now;
  }
  ParkOrSubmit(pipe);
}

void ResilienceService::FlushPendingScores(
    std::unique_lock<std::mutex>& lock, Worker& worker) {
  std::vector<std::shared_ptr<RepairPipeline>> batch =
      std::move(pending_scores_);
  pending_scores_.clear();
  lock.unlock();
  SyncReplica(worker);
  // Partition the pool: frontiers awaiting a generation pass, finished
  // decisions awaiting their confidence score. Both kinds stack across
  // sessions inside this one flush.
  std::vector<std::shared_ptr<RepairPipeline>> searching;
  std::vector<std::shared_ptr<RepairPipeline>> finishing;
  for (std::shared_ptr<RepairPipeline>& pipe : batch) {
    if (pipe->stage == RepairPipeline::Stage::kSearch) {
      searching.push_back(std::move(pipe));
    } else {
      finishing.push_back(std::move(pipe));
    }
  }
  std::vector<std::vector<double>> all_scores(searching.size());
  bool flush_failed = false;
  std::exception_ptr error;
  try {
    if (!searching.empty()) {
      // One stacked generation pass over every parked frontier; the GON
      // buckets mixed host counts internally (one kernel pass per H).
      std::vector<const nn::Matrix*> inits;
      std::vector<const core::EncodedState*> ctxs;
      for (const std::shared_ptr<RepairPipeline>& pipe : searching) {
        for (const core::EncodedState& ctx : pipe->contexts) {
          inits.push_back(&ctx.m);
          ctxs.push_back(&ctx);
        }
      }
      const Clock::time_point gen_start =
          obs_ ? Clock::now() : Clock::time_point{};
      const std::vector<core::GenerationResult> gens =
          worker.replica->GenerateBatch(inits, ctxs);
      if (obs_) {
        obs_->registry.Record(obs_->h_flush_generate_ns, worker.obs_shard,
                              static_cast<std::uint64_t>(NsSince(gen_start)));
      }
      std::size_t pos = 0;
      for (std::size_t j = 0; j < searching.size(); ++j) {
        const RepairPipeline& pipe = *searching[j];
        all_scores[j].reserve(pipe.contexts.size());
        for (std::size_t c = 0; c < pipe.contexts.size(); ++c) {
          all_scores[j].push_back(core::QosObjective(
              gens[pos++].metrics, pipe.session->cfg.alpha,
              pipe.session->cfg.beta));
        }
      }
      // Stacking accounting: jobs of one host count share one kernel
      // pass.
      std::unordered_set<std::size_t> host_counts;
      std::uint64_t states = 0;
      for (const std::shared_ptr<RepairPipeline>& pipe : searching) {
        host_counts.insert(pipe->contexts.front().num_hosts());
        states += pipe->contexts.size();
      }
      pipeline_passes_.fetch_add(host_counts.size(),
                                 std::memory_order_relaxed);
      pipeline_jobs_.fetch_add(searching.size(), std::memory_order_relaxed);
      pipeline_states_.fetch_add(states, std::memory_order_relaxed);
    }
    if (!finishing.empty()) {
      // One stacked confidence pass over every finished decision
      // (bucketed by H inside DiscriminateBatch — exactly equal to the
      // lone Discriminate calls it replaces).
      std::vector<const core::EncodedState*> finals;
      std::unordered_set<std::size_t> host_counts;
      finals.reserve(finishing.size());
      for (const std::shared_ptr<RepairPipeline>& pipe : finishing) {
        finals.push_back(&pipe->final_state);
        host_counts.insert(pipe->final_state.num_hosts());
      }
      const Clock::time_point disc_start =
          obs_ ? Clock::now() : Clock::time_point{};
      const std::vector<double> confidences =
          worker.replica->DiscriminateBatch(
              std::span<const core::EncodedState* const>(finals));
      if (obs_) {
        obs_->registry.Record(obs_->h_flush_confidence_ns, worker.obs_shard,
                              static_cast<std::uint64_t>(NsSince(disc_start)));
      }
      for (std::size_t j = 0; j < finishing.size(); ++j) {
        finishing[j]->response.confidence = confidences[j];
      }
      confidence_passes_.fetch_add(host_counts.size(),
                                   std::memory_order_relaxed);
      confidence_jobs_.fetch_add(finishing.size(),
                                 std::memory_order_relaxed);
    }
  } catch (...) {
    flush_failed = true;
    error = std::current_exception();
  }
  if (flush_failed) {
    for (const auto* group : {&searching, &finishing}) {
      for (const std::shared_ptr<RepairPipeline>& pipe : *group) {
        FinishRequest(*pipe->session);
        try {
          pipe->promise->set_exception(error);
        } catch (...) {
        }
      }
    }
    lock.lock();
    return;
  }
  // Completed decisions answer right here; searching pipelines get their
  // next step scheduled. The admission slot is released BEFORE the
  // response is delivered so a woken client's immediate follow-up
  // request never races the accounting.
  for (const std::shared_ptr<RepairPipeline>& pipe : finishing) {
    pipe->response.decision_ns = NsSince(pipe->t0);
    repairs_.fetch_add(1, std::memory_order_relaxed);
    if (obs_) {
      // Completion: close the trailing spans, record this repair into
      // the worker's histogram shard and push the finished span trace.
      // All of it happens before FinishRequest so a woken client's next
      // request can never observe a missing sample.
      const Clock::time_point now = Clock::now();
      pipe->trace.confidence_wait_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - pipe->parked_at)
              .count();
      pipe->trace.total_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - pipe->submit)
              .count();
      const std::size_t shard = worker.obs_shard;
      obs_->registry.Record(
          obs_->h_repair_decision_ns, shard,
          static_cast<std::uint64_t>(pipe->response.decision_ns));
      obs_->registry.Record(
          obs_->h_repair_queue_ns, shard,
          static_cast<std::uint64_t>(pipe->trace.queue_ns));
      obs_->registry.Record(
          obs_->h_encode_ns, shard,
          static_cast<std::uint64_t>(pipe->trace.encode_ns));
      obs_->registry.Record(
          obs_->h_score_wait_ns, shard,
          static_cast<std::uint64_t>(pipe->trace.score_wait_ns));
      obs_->registry.Record(
          obs_->h_splice_ns, shard,
          static_cast<std::uint64_t>(pipe->trace.splice_ns));
      obs_->registry.Record(
          obs_->h_confidence_wait_ns, shard,
          static_cast<std::uint64_t>(pipe->trace.confidence_wait_ns));
      obs_->traces.Push(pipe->trace);
    }
    FinishRequest(*pipe->session);
    pipe->promise->set_value(std::move(pipe->response));
  }
  lock.lock();
  for (std::size_t j = 0; j < searching.size(); ++j) {
    ready_.push_back([this, pipe = searching[j],
                      scores = std::move(all_scores[j])](Worker&) {
      AdvanceRepairPipeline(pipe, scores);
    });
  }
  queue_cv_.notify_all();
}

// --- legacy run-to-completion path --------------------------------------

RepairResponse ResilienceService::DoRepair(
    Session& session, const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot, const RepairScope* scope,
    Worker& worker) {
  // Exclusive session access: the scheduler never serves two requests of
  // one session concurrently (Session::active).
  SyncReplica(worker);
  const auto start = Clock::now();
  RepairResponse response;
  bool proactive_acted = false;
  core::EncodedState encoded;
  if (scope != nullptr) {
    // Scoped mode: run the sub-space job to completion on this worker,
    // scoring every frontier (and the final confidence) against the
    // H_sub sub snapshot. The linger batcher stacks these like any
    // other frontier — mixed H bucketing happens inside it.
    core::ScopedRepairJob job(current, failed_brokers, snapshot,
                              scope->hints, scope->options, session.cfg,
                              &session.rng);
    proactive_acted = job.proactive_acted();
    while (!job.done()) {
      job.Advance(ScoreFrontier(session, job.ProposeFrontier(),
                                job.scoring_snapshot(), worker));
    }
    response.topology = job.result();
    encoded = job.subgraph().empty()
                  ? session.encoder.EncodeForTopology(snapshot,
                                                      response.topology)
                  : session.encoder.EncodeForTopology(
                        job.scoring_snapshot(), job.sub_result());
  } else {
    const core::TopologyBatchScoreFn score =
        [&](const std::vector<sim::Topology>& frontier) {
          return ScoreFrontier(session, frontier, snapshot, worker);
        };
    response.topology =
        core::PlanDecision(current, failed_brokers, snapshot, session.cfg,
                           session.rng, score, &proactive_acted);
    encoded = session.encoder.EncodeForTopology(snapshot, response.topology);
  }
  if (proactive_acted) {
    proactives_.fetch_add(1, std::memory_order_relaxed);
  }
  response.confidence = worker.replica->Discriminate(encoded);
  response.decision_ns = NsSince(start);
  repairs_.fetch_add(1, std::memory_order_relaxed);
  if (obs_) {
    obs_->registry.Record(
        obs_->h_repair_decision_ns, worker.obs_shard,
        static_cast<std::uint64_t>(response.decision_ns));
  }
  return response;
}

ObserveResponse ResilienceService::DoObserve(
    Session& session, const sim::SystemSnapshot& snapshot, Worker& worker) {
  // Exclusive session access: see DoRepair.
  SyncReplica(worker);
  const auto start = Clock::now();
  const core::ConfidenceGate::Outcome outcome =
      session.gate.Observe(*worker.replica, session.encoder, snapshot);
  ObserveResponse response;
  response.confidence = outcome.confidence;
  response.threshold = outcome.threshold;
  if (outcome.finetune && !session.gate.gamma().empty()) {
    // Confidence breach: fine-tune the MASTER on this session's Gamma and
    // bump the weight epoch; every replica (including this worker's, right
    // here) re-syncs before serving its next step.
    std::lock_guard<std::mutex> master_lock(master_mu_);
    master_->FineTune(session.gate.gamma(), session.cfg.finetune_epochs);
    weight_epoch_.fetch_add(1, std::memory_order_release);
    if (session.cfg.policy == core::FineTunePolicy::kConfidence) {
      session.gate.ClearGamma();  // Algorithm 2 line 16
    }
    nn::CopyParameters(master_->network(), worker.replica->network());
    worker.epoch = weight_epoch_.load(std::memory_order_acquire);
    finetunes_.fetch_add(1, std::memory_order_relaxed);
    response.fine_tuned = true;
  }
  response.observe_ns = NsSince(start);
  observes_.fetch_add(1, std::memory_order_relaxed);
  if (obs_) {
    obs_->registry.Record(obs_->h_observe_ns, worker.obs_shard,
                          static_cast<std::uint64_t>(response.observe_ns));
  }
  return response;
}

std::vector<double> ResilienceService::ScoreFrontier(
    Session& session, const std::vector<sim::Topology>& frontier,
    const sim::SystemSnapshot& snapshot, Worker& worker) {
  if (frontier.empty()) return {};
  std::vector<core::EncodedState> contexts =
      core::EncodeFrontier(session.encoder, snapshot, frontier);
  if (!config_.cross_session_batching || config_.batch_linger_us <= 0 ||
      workers_.size() <= 1) {
    // A zero-length linger window can never observe a peer's job — and
    // neither can a sole worker, which would otherwise sleep out the
    // full window on every frontier — so skip the batcher's
    // queue/promise machinery entirely.
    return core::ScoreEncoded(*worker.replica, contexts, session.cfg.alpha,
                              session.cfg.beta);
  }
  return batcher_->Execute(std::move(contexts), session.cfg.alpha,
                           session.cfg.beta, worker.epoch, *worker.replica);
}

// --- surrogate management / introspection -------------------------------

std::vector<core::EpochStats> ResilienceService::TrainOffline(
    const workload::Trace& trace, int max_epochs) {
  std::vector<core::EncodedState> data;
  data.reserve(trace.size());
  const core::FeatureEncoder encoder;
  for (const auto& record : trace) {
    data.push_back(encoder.EncodeRecord(record));
  }
  std::lock_guard<std::mutex> lock(master_mu_);
  auto stats = master_->Train(data, max_epochs);
  weight_epoch_.fetch_add(1, std::memory_order_release);
  return stats;
}

void ResilienceService::LoadWeights(const std::string& path) {
  std::lock_guard<std::mutex> lock(master_mu_);
  nn::LoadParameters(master_->network(), path);
  weight_epoch_.fetch_add(1, std::memory_order_release);
}

void ResilienceService::SaveWeights(const std::string& path) {
  std::lock_guard<std::mutex> lock(master_mu_);
  nn::SaveParameters(master_->network(), path);
}

// --- service snapshot ("carol-snap" v1) ---------------------------------
//
// Layout (all via common::BinaryWriter; see src/serve/README.md for the
// versioning policy):
//   header "carol-snap" v1
//   u64 weight_epoch
//   master parameters ("carol-params-bin" section)
//   u64 next_session_id, u64 session_count
//   per session (sorted by id): "carol-snap-session" section

namespace {

void WriteMatrix(common::BinaryWriter& w, const nn::Matrix& m) {
  w.U64(m.rows());
  w.U64(m.cols());
  w.Doubles(m.flat());
}

nn::Matrix ReadMatrix(common::BinaryReader& r) {
  const auto rows = static_cast<std::size_t>(r.U64());
  const auto cols = static_cast<std::size_t>(r.U64());
  std::vector<double> flat = r.Doubles();
  if (flat.size() != rows * cols) {
    throw common::BinaryFormatError("matrix element count mismatch");
  }
  return nn::Matrix::FromFlat(rows, cols, std::move(flat));
}

void WriteEncodedState(common::BinaryWriter& w,
                       const core::EncodedState& state) {
  WriteMatrix(w, state.m);
  WriteMatrix(w, state.s);
  WriteMatrix(w, state.roles);
  WriteMatrix(w, state.adjacency);
}

core::EncodedState ReadEncodedState(common::BinaryReader& r) {
  core::EncodedState state;
  state.m = ReadMatrix(r);
  state.s = ReadMatrix(r);
  state.roles = ReadMatrix(r);
  state.adjacency = ReadMatrix(r);
  return state;
}

// The full per-session CarolConfig travels with the snapshot so a
// restored session behaves identically even when the restoring binary's
// defaults drifted.
void WriteCarolConfig(common::BinaryWriter& w, const core::CarolConfig& c) {
  w.I32(c.gon.hidden_width);
  w.I32(c.gon.num_layers);
  w.I32(c.gon.gat_width);
  w.F64(c.gon.generation_lr);
  w.I32(c.gon.generation_steps);
  w.F64(c.gon.generation_tol);
  w.F64(c.gon.train_lr);
  w.F64(c.gon.weight_decay);
  w.I32(c.gon.batch_size);
  w.U64(c.gon.seed);
  w.Bool(c.gon.use_fast_path);
  w.I32(c.gon.attention_threads);
  w.F64(c.pot.risk);
  w.F64(c.pot.init_quantile);
  w.U64(c.pot.min_calibration);
  w.U64(c.pot.window);
  w.I32(c.tabu.tabu_list_size);
  w.I32(c.tabu.max_iterations);
  w.I32(c.tabu.max_evaluations);
  w.I32(c.node_shift.max_type1_pairs);
  w.I32(c.node_shift.max_reassignments);
  w.Bool(c.node_shift.include_demotions);
  w.F64(c.alpha);
  w.F64(c.beta);
  w.I32(static_cast<std::int32_t>(c.policy));
  w.I32(c.finetune_epochs);
  w.U64(c.gamma_capacity);
  w.U64(c.seed);
  w.Bool(c.proactive);
  w.F64(c.proactive_util_threshold);
  // Session-section v2: the scoped-repair sub-config.
  w.Bool(c.scoped.enabled);
  w.I32(c.scoped.max_hosts);
  w.Bool(c.scoped.fill_to_budget);
}

core::CarolConfig ReadCarolConfig(common::BinaryReader& r,
                                  std::uint32_t version) {
  core::CarolConfig c;
  c.gon.hidden_width = r.I32();
  c.gon.num_layers = r.I32();
  c.gon.gat_width = r.I32();
  c.gon.generation_lr = r.F64();
  c.gon.generation_steps = r.I32();
  c.gon.generation_tol = r.F64();
  c.gon.train_lr = r.F64();
  c.gon.weight_decay = r.F64();
  c.gon.batch_size = r.I32();
  c.gon.seed = static_cast<unsigned>(r.U64());
  c.gon.use_fast_path = r.Bool();
  c.gon.attention_threads = r.I32();
  c.pot.risk = r.F64();
  c.pot.init_quantile = r.F64();
  c.pot.min_calibration = static_cast<std::size_t>(r.U64());
  c.pot.window = static_cast<std::size_t>(r.U64());
  c.tabu.tabu_list_size = r.I32();
  c.tabu.max_iterations = r.I32();
  c.tabu.max_evaluations = r.I32();
  c.node_shift.max_type1_pairs = r.I32();
  c.node_shift.max_reassignments = r.I32();
  c.node_shift.include_demotions = r.Bool();
  c.alpha = r.F64();
  c.beta = r.F64();
  c.policy = static_cast<core::FineTunePolicy>(r.I32());
  c.finetune_epochs = r.I32();
  c.gamma_capacity = static_cast<std::size_t>(r.U64());
  c.seed = static_cast<unsigned>(r.U64());
  c.proactive = r.Bool();
  c.proactive_util_threshold = r.F64();
  if (version >= 2) {
    c.scoped.enabled = r.Bool();
    c.scoped.max_hosts = r.I32();
    c.scoped.fill_to_budget = r.Bool();
  }
  return c;
}

void WriteTabuSnapshot(common::BinaryWriter& w,
                       const core::TabuSearchSnapshot& s) {
  w.Ints(s.current);
  w.Ints(s.best);
  w.F64(s.best_score);
  w.Ints(s.tabu);
  w.U64(s.frontier.size());
  for (const std::vector<sim::NodeId>& candidate : s.frontier) {
    w.Ints(candidate);
  }
  w.I32(s.evaluations);
  w.I32(s.iter);
  w.Bool(s.start_pending);
  w.Bool(s.done);
}

core::TabuSearchSnapshot ReadTabuSnapshot(common::BinaryReader& r) {
  core::TabuSearchSnapshot s;
  s.current = r.Ints<sim::NodeId>();
  s.best = r.Ints<sim::NodeId>();
  s.best_score = r.F64();
  s.tabu = r.Ints<std::uint64_t>();
  const std::uint64_t frontier = r.U64();
  for (std::uint64_t i = 0; i < frontier; ++i) {
    s.frontier.push_back(r.Ints<sim::NodeId>());
  }
  s.evaluations = r.I32();
  s.iter = r.I32();
  s.start_pending = r.Bool();
  s.done = r.Bool();
  return s;
}

void WriteRepairJobState(common::BinaryWriter& w,
                         const core::RepairJobState& s) {
  w.Bools(s.alive);
  w.Ints(s.topo);
  w.U64(s.broker_idx);
  w.I32(s.phase);
  w.Bool(s.proactive_acted);
  w.U64(s.baseline.size());
  for (const std::vector<sim::NodeId>& g : s.baseline) w.Ints(g);
  w.Bool(s.has_search);
  if (s.has_search) WriteTabuSnapshot(w, s.search);
}

core::RepairJobState ReadRepairJobState(common::BinaryReader& r) {
  core::RepairJobState s;
  s.alive = r.Bools();
  s.topo = r.Ints<sim::NodeId>();
  s.broker_idx = r.U64();
  s.phase = r.I32();
  if (s.phase < 0 || s.phase > 3) {
    throw common::BinaryFormatError("repair job phase out of range");
  }
  s.proactive_acted = r.Bool();
  const std::uint64_t baseline = r.U64();
  for (std::uint64_t i = 0; i < baseline; ++i) {
    s.baseline.push_back(r.Ints<sim::NodeId>());
  }
  s.has_search = r.Bool();
  if (s.has_search) s.search = ReadTabuSnapshot(r);
  return s;
}

}  // namespace

void ResilienceService::WriteSession(common::BinaryWriter& w,
                                     const Session& session) {
  // v2 adds the scoped-repair fields of a parked repair (scope identity
  // + extraction options). v1 images (no scoped repairs possible) still
  // load; v2 images are rejected by v1 readers per the reject-forward
  // policy in src/serve/README.md.
  w.Header("carol-snap-session", 2);
  w.U64(session.id);
  w.String(session.name);
  WriteCarolConfig(w, session.cfg);
  // The mt19937_64 engine is the rng's ONLY state, and its stream
  // operators round-trip it exactly — the repair draws of a restored
  // session continue the original sequence.
  w.String(session.rng.SaveState());
  const core::ConfidenceGate::State gate = session.gate.SaveState();
  w.Doubles(gate.pot.history);
  w.F64(gate.pot.threshold);
  w.Bool(gate.pot.calibrated);
  w.U64(gate.pot.total_observations);
  w.U64(gate.gamma.size());
  for (const core::EncodedState& entry : gate.gamma) {
    WriteEncodedState(w, entry);
  }
  w.Bool(session.parked != nullptr);
  if (session.parked) {
    w.Ints(session.parked->current);
    w.Ints(session.parked->failed);
    WriteRepairJobState(w, session.parked->job);
    w.Bool(session.parked->scoped);
    if (session.parked->scoped) {
      w.I32(session.parked->scope.options.max_hosts);
      w.Bool(session.parked->scope.options.fill_to_budget);
      w.Ints(session.parked->scope.hints);
    }
  }
}

std::shared_ptr<ResilienceService::Session> ResilienceService::ReadSession(
    common::BinaryReader& r) {
  const std::uint32_t version = r.Header("carol-snap-session", 2);
  const SessionId id = r.U64();
  FederationSpec spec;
  spec.name = r.String();
  spec.carol = ReadCarolConfig(r, version);
  auto session = std::make_shared<Session>(spec);
  session->id = id;
  session->rng.LoadState(r.String());
  core::ConfidenceGate::State gate;
  gate.pot.history = r.Doubles();
  gate.pot.threshold = r.F64();
  gate.pot.calibrated = r.Bool();
  gate.pot.total_observations = r.U64();
  const std::uint64_t gamma = r.U64();
  for (std::uint64_t i = 0; i < gamma; ++i) {
    gate.gamma.push_back(ReadEncodedState(r));
  }
  session->gate.RestoreState(std::move(gate));
  if (r.Bool()) {
    auto parked = std::make_unique<ParkedRepair>();
    parked->current = r.Ints<sim::NodeId>();
    parked->failed = r.Ints<sim::NodeId>();
    parked->job = ReadRepairJobState(r);
    if (version >= 2 && r.Bool()) {
      parked->scoped = true;
      parked->scope.options.enabled = true;
      parked->scope.options.max_hosts = r.I32();
      parked->scope.options.fill_to_budget = r.Bool();
      parked->scope.hints = r.Ints<sim::NodeId>();
    }
    session->parked = std::move(parked);
  }
  return session;
}

void ResilienceService::SaveSnapshot(std::ostream& out) const {
  std::scoped_lock lock(master_mu_, sessions_mu_, queue_mu_);
  if (!queue_.empty() || !ready_.empty() || !pending_scores_.empty() ||
      inflight_ != 0) {
    throw std::logic_error(
        "ResilienceService::SaveSnapshot: requests still pending; "
        "BeginDrain() + WaitDrained() first");
  }
  common::BinaryWriter w(out);
  w.Header("carol-snap", 1);
  w.U64(weight_epoch_.load(std::memory_order_acquire));
  nn::SaveParametersBinary(master_->network(), out);
  w.U64(next_session_id_.load());
  // Sessions sorted by id: the snapshot byte stream is itself
  // deterministic, independent of hash-map iteration order.
  std::vector<const Session*> ordered;
  ordered.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    ordered.push_back(session.get());
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Session* a, const Session* b) { return a->id < b->id; });
  w.U64(ordered.size());
  for (const Session* session : ordered) WriteSession(w, *session);
  w.CheckOk("ResilienceService::SaveSnapshot");
}

void ResilienceService::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("ResilienceService: cannot open " + path);
  }
  SaveSnapshot(out);
}

void ResilienceService::RestoreFromSnapshot(std::istream& in) {
  common::BinaryReader r(in);
  r.Header("carol-snap", 1);
  const std::uint64_t epoch = r.U64();
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    nn::LoadParametersBinary(master_->network(), in);
    // Replicas were just built at epoch 0 with seed-identical weights;
    // when the snapshot carries a later epoch each replica lazily
    // re-syncs from the restored master before serving its next step
    // (SyncReplica) — exactly the post-fine-tune broadcast path.
    weight_epoch_.store(epoch, std::memory_order_release);
  }
  const std::uint64_t next_id = r.U64();
  const std::uint64_t count = r.U64();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::shared_ptr<Session> session = ReadSession(r);
    const SessionId id = session->id;
    sessions_.emplace(id, std::move(session));
  }
  next_session_id_.store(next_id);
}

ServiceStats ResilienceService::stats() const {
  ServiceStats s;
  s.repairs = repairs_.load();
  s.observes = observes_.load();
  s.finetunes = finetunes_.load();
  s.proactive_optimizations = proactives_.load();
  s.score_batches = batcher_->score_batches();
  s.stacked_jobs = batcher_->stacked_jobs();
  s.pipeline_passes = pipeline_passes_.load();
  s.pipeline_jobs = pipeline_jobs_.load();
  s.pipeline_states = pipeline_states_.load();
  s.confidence_passes = confidence_passes_.load();
  s.confidence_jobs = confidence_jobs_.load();
  s.weight_epoch = weight_epoch_.load();
  s.shed_observes = shed_observes_.load();
  s.shed_repairs = shed_repairs_.load();
  s.quota_rejections = quota_rejections_.load();
  s.timeouts = timeouts_.load();
  s.suspended = suspended_.load();
  return s;
}

obs::MetricsSnapshot ResilienceService::MetricsSnapshot() const {
  // Histograms come from the sharded registry; counters are copied from
  // the SAME atomics stats() reads, so the two views reconcile exactly
  // by construction (pinned by tests/obs_test.cpp) — and the counters
  // are present even with observability off.
  obs::MetricsSnapshot snap =
      obs_ ? obs_->registry.Snapshot() : obs::MetricsSnapshot{};
  const ServiceStats s = stats();
  auto add = [&snap](const char* name, std::uint64_t value) {
    snap.counters.push_back({name, value});
  };
  add("repairs", s.repairs);
  add("observes", s.observes);
  add("finetunes", s.finetunes);
  add("proactive_optimizations", s.proactive_optimizations);
  add("score_batches", s.score_batches);
  add("stacked_jobs", s.stacked_jobs);
  add("pipeline_passes", s.pipeline_passes);
  add("pipeline_jobs", s.pipeline_jobs);
  add("pipeline_states", s.pipeline_states);
  add("confidence_passes", s.confidence_passes);
  add("confidence_jobs", s.confidence_jobs);
  add("shed_observes", s.shed_observes);
  add("shed_repairs", s.shed_repairs);
  add("quota_rejections", s.quota_rejections);
  add("timeouts", s.timeouts);
  add("suspended", s.suspended);
  snap.gauges.push_back(
      {"weight_epoch", static_cast<double>(s.weight_epoch)});
  snap.gauges.push_back(
      {"sessions", static_cast<double>(session_count())});
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snap.gauges.push_back(
        {"pending_requests",
         static_cast<double>(queue_.size() + inflight_)});
  }
  if (obs_) {
    snap.gauges.push_back(
        {"decision_traces", static_cast<double>(obs_->traces.total())});
  }
  return snap;
}

std::vector<obs::DecisionTrace> ResilienceService::DecisionTraces() const {
  if (!obs_) return {};
  return obs_->traces.Snapshot();
}

double ResilienceService::MemoryFootprintMb() const {
  // Master + one replica per worker shard...
  double mb = master_->MemoryFootprintMb() *
              (1.0 + static_cast<double>(workers_.size()));
  // ...plus every session's Gamma budget (16-host states, as CarolModel).
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    mb += core::GammaStateBytes() *
          static_cast<double>(session->cfg.gamma_capacity) /
          (1024.0 * 1024.0);
  }
  return mb;
}

// --- SessionModel -------------------------------------------------------

SessionModel::SessionModel(ResilienceService& service,
                           const FederationSpec& spec)
    : service_(&service),
      id_(service.OpenSession(spec)),
      name_(spec.name),
      gamma_capacity_(spec.carol.gamma_capacity) {}

SessionModel::~SessionModel() {
  try {
    service_->CloseSession(id_);
  } catch (...) {
    // Session already closed or service shut down: nothing to release.
  }
}

sim::Topology SessionModel::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  RepairResponse response =
      service_->Repair(id_, current, failed_brokers, snapshot);
  decision_ns_.Add(response.decision_ns);
  return std::move(response.topology);
}

void SessionModel::Observe(const sim::SystemSnapshot& snapshot) {
  const ObserveResponse response = service_->Observe(id_, snapshot);
  if (response.fine_tuned) ++finetunes_;
}

double SessionModel::MemoryFootprintMb() const {
  // This session's share: the shared surrogate plus its own Gamma budget
  // (mirrors CarolModel::MemoryFootprintMb for comparability).
  return service_->master_gon().MemoryFootprintMb() +
         core::GammaStateBytes() * static_cast<double>(gamma_capacity_) /
             (1024.0 * 1024.0);
}

}  // namespace carol::serve
