// ECLB baseline (Sharif et al., "Fault-tolerant with load balancing
// scheduling in a fog-based IoT application", IET Communications 2020) —
// meta-heuristic, paper Table I row 5. Uses Bayesian classification of
// hosts into {overloaded, underloaded, normal} from their utilization
// metrics (Gaussian naive Bayes with online-updated class statistics)
// and migrates load away from overloaded hosts; broker repair promotes
// the orphan with the highest "underloaded" posterior.
#ifndef CAROL_BASELINES_ECLB_H_
#define CAROL_BASELINES_ECLB_H_

#include <array>

#include "core/resilience.h"

namespace carol::baselines {

class Eclb : public core::ResilienceModel {
 public:
  Eclb();

  std::string name() const override { return "ECLB"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  enum class HostClass { kUnderloaded = 0, kNormal = 1, kOverloaded = 2 };
  // Posterior over the three classes for a (cpu, ram) utilization pair.
  std::array<double, 3> Posterior(double cpu_util, double ram_util) const;
  HostClass Classify(double cpu_util, double ram_util) const;

 private:
  struct ClassStats {
    double mean_cpu, var_cpu;
    double mean_ram, var_ram;
    double prior;
    std::size_t count;
  };
  void UpdateClass(ClassStats& stats, double cpu, double ram);

  std::array<ClassStats, 3> classes_;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_ECLB_H_
