#include "baselines/topomad.h"

#include <algorithm>
#include <cmath>

namespace carol::baselines {

namespace {
constexpr int kFeatureWidth = 10;
}

Topomad::Topomad(TopomadConfig config)
    : config_(config),
      rng_(config.seed),
      policy_(FrasConfig{.seed = config.seed + 1}) {
  encoder_ = std::make_unique<nn::LstmCell>(
      kFeatureWidth, static_cast<std::size_t>(config_.lstm_hidden), rng_,
      "topomad.lstm");
  mu_head_ = std::make_unique<nn::Dense>(
      static_cast<std::size_t>(config_.lstm_hidden),
      static_cast<std::size_t>(config_.latent), rng_, "topomad.mu");
  logvar_head_ = std::make_unique<nn::Dense>(
      static_cast<std::size_t>(config_.lstm_hidden),
      static_cast<std::size_t>(config_.latent), rng_, "topomad.logvar");
  decoder_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{static_cast<std::size_t>(config_.latent),
                               static_cast<std::size_t>(config_.lstm_hidden),
                               kFeatureWidth},
      rng_, "topomad.dec", nn::Activation::kSigmoid);
  std::vector<nn::Parameter*> params = encoder_->Parameters();
  for (auto* p : mu_head_->Parameters()) params.push_back(p);
  for (auto* p : logvar_head_->Parameters()) params.push_back(p);
  for (auto* p : decoder_->Parameters()) params.push_back(p);
  optimizer_ = std::make_unique<nn::Adam>(params, config_.learning_rate);
}

Topomad::~Topomad() = default;

std::vector<double> Topomad::Summarize(
    const sim::SystemSnapshot& snap) const {
  double cpu = 0, ram = 0, disk = 0, net = 0, slo = 0, failed = 0, max_cpu = 0;
  for (const auto& m : snap.hosts) {
    cpu += m.cpu_util;
    ram += m.ram_util;
    disk += m.disk_util;
    net += m.net_util;
    slo += m.slo_violation_rate;
    failed += m.failed ? 1.0 : 0.0;
    max_cpu = std::max(max_cpu, m.cpu_util);
  }
  const double h = std::max<std::size_t>(1, snap.hosts.size());
  return {std::min(1.0, cpu / h),
          std::min(1.0, ram / h),
          std::min(1.0, disk / h),
          std::min(1.0, net / h),
          std::min(1.0, slo / h),
          failed / h,
          std::min(1.0, max_cpu / 2.0),
          static_cast<double>(snap.topology.broker_count()) / h,
          std::min(1.0, static_cast<double>(snap.active_tasks) / 32.0),
          std::min(1.0, snap.avg_response_s / 600.0)};
}

double Topomad::AnomalyScore() {
  if (window_.empty()) return 0.0;
  // Encode the window, decode the last step, report the MSE.
  nn::Tape tape;
  encoder_->ClearBindings();
  mu_head_->ClearBindings();
  logvar_head_->ClearBindings();
  decoder_->ClearBindings();
  auto state = encoder_->InitialState(tape, 1);
  for (const auto& row : window_) {
    nn::Matrix x(1, kFeatureWidth);
    for (std::size_t k = 0; k < row.size(); ++k) x(0, k) = row[k];
    state = encoder_->Forward(tape, tape.Leaf(x), state);
  }
  nn::Value mu = mu_head_->Forward(tape, state.h);
  nn::Value recon = decoder_->Forward(tape, mu);  // mean latent at test time
  nn::Matrix target(1, kFeatureWidth);
  for (std::size_t k = 0; k < window_.back().size(); ++k) {
    target(0, k) = window_.back()[k];
  }
  const nn::Matrix diff = recon.val() - target;
  return diff.Norm() * diff.Norm() / kFeatureWidth;
}

void Topomad::TrainStep() {
  if (window_.size() < 2) return;
  nn::Tape tape;
  encoder_->ClearBindings();
  mu_head_->ClearBindings();
  logvar_head_->ClearBindings();
  decoder_->ClearBindings();
  auto state = encoder_->InitialState(tape, 1);
  for (const auto& row : window_) {
    nn::Matrix x(1, kFeatureWidth);
    for (std::size_t k = 0; k < row.size(); ++k) x(0, k) = row[k];
    state = encoder_->Forward(tape, tape.Leaf(x), state);
  }
  nn::Value mu = mu_head_->Forward(tape, state.h);
  nn::Value logvar = logvar_head_->Forward(tape, state.h);
  // Reparameterization: z = mu + eps * exp(0.5*logvar).
  nn::Matrix eps(1, static_cast<std::size_t>(config_.latent));
  for (double& v : eps.flat()) v = rng_.Normal(0.0, 1.0);
  nn::Value z = tape.Add(
      mu, tape.Mul(tape.Leaf(eps), tape.Exp(tape.Scale(logvar, 0.5))));
  nn::Value recon = decoder_->Forward(tape, z);
  nn::Matrix target(1, kFeatureWidth);
  for (std::size_t k = 0; k < window_.back().size(); ++k) {
    target(0, k) = window_.back()[k];
  }
  nn::Value recon_loss = nn::MseLoss(tape, recon, target);
  // KL(q || N(0,1)) = -0.5 * sum(1 + logvar - mu^2 - exp(logvar)).
  nn::Value one = tape.Leaf(
      nn::Matrix::Ones(1, static_cast<std::size_t>(config_.latent)));
  nn::Value kl_inner = tape.Sub(
      tape.Add(one, logvar), tape.Add(tape.Mul(mu, mu), tape.Exp(logvar)));
  nn::Value kl = tape.Scale(tape.SumAll(kl_inner), -0.5);
  nn::Value loss = tape.Add(recon_loss, tape.Scale(kl, 0.01));
  optimizer_->ZeroGrad();
  tape.Backward(loss);
  encoder_->CollectGrads();
  mu_head_->CollectGrads();
  logvar_head_->CollectGrads();
  decoder_->CollectGrads();
  optimizer_->Step();
}

sim::Topology Topomad::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  // Reconstruction error gates the (borrowed) repair policy: a reactive
  // fault-recovery scheme, the limitation the paper notes for
  // reconstruction models.
  return policy_.PolicyRepair(current, failed_brokers, snapshot);
}

void Topomad::Observe(const sim::SystemSnapshot& snapshot) {
  window_.push_back(Summarize(snapshot));
  while (window_.size() > static_cast<std::size_t>(config_.window)) {
    window_.pop_front();
  }
  for (int s = 0; s < config_.train_steps_per_interval; ++s) TrainStep();
  policy_.Observe(snapshot);
}

double Topomad::MemoryFootprintMb() const {
  auto* self = const_cast<Topomad*>(this);
  std::size_t params = self->encoder_->ParameterCount() +
                       self->mu_head_->ParameterCount() +
                       self->logvar_head_->ParameterCount() +
                       self->decoder_->ParameterCount();
  return static_cast<double>(params) * sizeof(double) * 3.0 /
             (1024.0 * 1024.0) +
         policy_.MemoryFootprintMb() + 0.3;
}

}  // namespace carol::baselines
