// ELBS baseline (Talaat et al., "Effective Load Balancing Strategy using
// fuzzy and probabilistic neural networks", JNSM 2019) — surrogate model,
// paper Table I row 7. A fuzzy inference system combines SLO deadline,
// user priority and estimated processing time into task priority scores;
// a probabilistic neural network (PNN, a kernel-density classifier that
// memorizes training exemplars) acts as the QoS surrogate scoring
// candidate topologies. The exemplar store is what gives ELBS the
// highest memory consumption in the paper's Fig. 5(e), and the per-task
// per-node fuzzy matchmaking pass its high decision time.
#ifndef CAROL_BASELINES_ELBS_H_
#define CAROL_BASELINES_ELBS_H_

#include <vector>

#include "core/resilience.h"

namespace carol::baselines {

struct ElbsConfig {
  // PNN kernel bandwidth.
  double bandwidth = 0.15;
  // Exemplar store capacity (each exemplar is a host-feature vector with
  // a QoS label). ELBS keeps the full training history in memory.
  std::size_t max_exemplars = 4096;
  // Fuzzy matchmaking sweeps per decision.
  int matchmaking_rounds = 4;
};

class Elbs : public core::ResilienceModel {
 public:
  explicit Elbs(ElbsConfig config = {});

  std::string name() const override { return "ELBS"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // Triangular-membership fuzzy priority from (deadline slack, priority,
  // estimated processing time), each in [0,1]. Exposed for tests.
  static double FuzzyPriority(double deadline_slack, double user_priority,
                              double processing_time);

  // PNN QoS estimate for a topology-summary feature vector: returns the
  // kernel-weighted average QoS label of stored exemplars (lower is
  // better). Returns 0.5 when the store is empty.
  double PnnScore(const std::vector<double>& features) const;

  std::size_t exemplar_count() const { return exemplars_.size(); }

 private:
  struct Exemplar {
    std::vector<double> features;
    double qos_label;
  };
  static std::vector<double> SummarizeTopology(
      const sim::Topology& topo, const sim::SystemSnapshot& snapshot);

  ElbsConfig config_;
  std::vector<Exemplar> exemplars_;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_ELBS_H_
