// Ablated CAROL variants (paper §V-D, hatched bars of Fig. 5):
//   * Always-Fine-Tune / Never-Fine-Tune — CAROL with the confidence
//     gating forced on/off (built from CarolModel configs).
//   * With-GAN — a conventional GAN replaces the GON: a generator
//     produces the QoS metrics in a single forward pass (faster
//     decisions) but doubles the resident networks (higher memory) and
//     loses the input-space-optimization prediction quality.
//   * With-Traditional-Surrogate — a feed-forward regressor maps
//     (S, G) straight to QoS; no likelihood output means no confidence
//     gating, so it must fine-tune every interval (higher overheads).
#ifndef CAROL_BASELINES_ABLATIONS_H_
#define CAROL_BASELINES_ABLATIONS_H_

#include <memory>

#include "core/carol.h"
#include "core/encoder.h"
#include "core/gon.h"
#include "core/resilience.h"
#include "core/tabu.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "workload/trace.h"

namespace carol::baselines {

// CAROL with fine-tuning at every interval.
std::unique_ptr<core::CarolModel> MakeAlwaysFineTune(
    core::CarolConfig config = {});
// CAROL that never fine-tunes after offline training.
std::unique_ptr<core::CarolModel> MakeNeverFineTune(
    core::CarolConfig config = {});

struct WithGanConfig {
  core::GonConfig discriminator;  // reused GON architecture for D
  int generator_hidden = 128;
  double generator_lr = 1e-3;
  core::TabuConfig tabu;
  core::PotConfig pot;
  double alpha = 0.5;
  double beta = 0.5;
  int finetune_epochs = 2;
  unsigned seed = 23;
};

// CAROL-with-GAN ablation: generator-based QoS prediction.
class WithGanSurrogate : public core::ResilienceModel {
 public:
  explicit WithGanSurrogate(WithGanConfig config = {});
  ~WithGanSurrogate() override;

  // Adversarial offline training of (G, D) on the trace.
  void TrainOffline(const workload::Trace& trace, int epochs = 15);

  std::string name() const override { return "With-GAN"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // One-forward-pass QoS metrics prediction for a candidate topology.
  nn::Matrix PredictMetrics(const core::EncodedState& context);
  double ScoreTopology(const sim::Topology& candidate,
                       const sim::SystemSnapshot& snapshot);

 private:
  WithGanConfig config_;
  common::Rng rng_;
  core::FeatureEncoder encoder_;
  std::unique_ptr<core::GonModel> discriminator_;
  std::unique_ptr<nn::Mlp> generator_;  // per-host: [S,roles,noise] -> M row
  std::unique_ptr<nn::Adam> gen_opt_;
  core::PotThreshold pot_;
  std::vector<core::EncodedState> gamma_;
};

struct TraditionalSurrogateConfig {
  int hidden = 96;
  double learning_rate = 1e-3;
  core::TabuConfig tabu;
  double alpha = 0.5;
  double beta = 0.5;
  // Without a confidence signal the surrogate re-fits on the whole
  // recent buffer every interval (the paper's stated drawback).
  int finetune_steps_per_interval = 32;
  unsigned seed = 29;
};

// CAROL-with-feed-forward-surrogate ablation.
class TraditionalSurrogate : public core::ResilienceModel {
 public:
  explicit TraditionalSurrogate(TraditionalSurrogateConfig config = {});
  ~TraditionalSurrogate() override;

  void TrainOffline(const workload::Trace& trace, int epochs = 30);

  std::string name() const override { return "Trad-Surrogate"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // Predicted (energy_norm, slo_norm) for a candidate topology.
  std::pair<double, double> PredictQos(const sim::Topology& candidate,
                                       const sim::SystemSnapshot& snapshot);

 private:
  static std::vector<double> TopologyFeatures(
      const sim::Topology& topo, const sim::SystemSnapshot& snapshot);
  void SupervisedStep(const std::vector<double>& features, double energy,
                      double slo);

  TraditionalSurrogateConfig config_;
  common::Rng rng_;
  std::unique_ptr<nn::Mlp> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<std::pair<std::vector<double>, std::pair<double, double>>>
      recent_;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_ABLATIONS_H_
