// DYVERSE baseline (Wang et al., "DYVERSE: DYnamic VERtical Scaling in
// multi-tenant Edge environments", FGCS 2020) — heuristic, paper Table I
// row 1. An ensemble of three heuristics (system-aware, community-aware,
// workload-aware) maintains per-application priority scores that drive
// vertical scaling; on a broker failure it promotes the orphan worker
// with the least CPU utilization (paper §II).
#ifndef CAROL_BASELINES_DYVERSE_H_
#define CAROL_BASELINES_DYVERSE_H_

#include <vector>

#include "core/resilience.h"

namespace carol::baselines {

struct DyverseConfig {
  // Weights of the three priority heuristics.
  double system_weight = 0.4;
  double community_weight = 0.3;
  double workload_weight = 0.3;
  // Simulated per-application priority re-scoring cost (the paper's
  // dynamic vertical scaling pass), in score updates per host.
  int rescoring_sweeps = 3;
};

class Dyverse : public core::ResilienceModel {
 public:
  explicit Dyverse(DyverseConfig config = {}) : config_(config) {}

  std::string name() const override { return "DYVERSE"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  const std::vector<double>& priorities() const { return priorities_; }

 private:
  DyverseConfig config_;
  std::vector<double> priorities_;  // per host
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_DYVERSE_H_
