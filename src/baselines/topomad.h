// TopoMAD baseline (He et al., "A spatiotemporal deep learning approach
// for unsupervised anomaly detection in cloud systems", TNNLS 2020) —
// reconstruction model, paper Table I row 9. A topology-aware LSTM
// encoder feeds a variational autoencoder; the reconstruction error of
// the latest window is the anomaly score. TopoMAD is detection-only, so
// (per the paper's §V setup) it borrows FRAS's priority load-balancing
// policy for the actual topology repair.
#ifndef CAROL_BASELINES_TOPOMAD_H_
#define CAROL_BASELINES_TOPOMAD_H_

#include <deque>
#include <memory>

#include "baselines/fras.h"
#include "core/resilience.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace carol::baselines {

struct TopomadConfig {
  int lstm_hidden = 40;
  int latent = 8;
  int window = 8;
  double learning_rate = 1e-3;
  int train_steps_per_interval = 4;
  unsigned seed = 17;
};

class Topomad : public core::ResilienceModel {
 public:
  explicit Topomad(TopomadConfig config = {});
  ~Topomad() override;

  std::string name() const override { return "TopoMAD"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // Reconstruction-error anomaly score of the current window (higher =
  // more anomalous). 0 until the window fills.
  double AnomalyScore();
  const std::deque<std::vector<double>>& window() const { return window_; }

 private:
  std::vector<double> Summarize(const sim::SystemSnapshot& snap) const;
  void TrainStep();

  TopomadConfig config_;
  common::Rng rng_;
  std::unique_ptr<nn::LstmCell> encoder_;
  std::unique_ptr<nn::Dense> mu_head_;
  std::unique_ptr<nn::Dense> logvar_head_;
  std::unique_ptr<nn::Mlp> decoder_;
  std::unique_ptr<nn::Adam> optimizer_;
  Fras policy_;  // borrowed recovery policy
  std::deque<std::vector<double>> window_;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_TOPOMAD_H_
