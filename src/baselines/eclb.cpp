#include "baselines/eclb.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace carol::baselines {

namespace {
double GaussianLogPdf(double x, double mean, double var) {
  const double v = std::max(var, 1e-4);
  const double d = x - mean;
  return -0.5 * (std::log(2.0 * 3.14159265358979 * v) + d * d / v);
}
}  // namespace

Eclb::Eclb() {
  // Seed class statistics with the natural interpretation of the three
  // regimes; online updates adapt them to the observed federation.
  classes_[0] = {0.15, 0.02, 0.15, 0.02, 1.0 / 3.0, 1};  // underloaded
  classes_[1] = {0.55, 0.03, 0.50, 0.03, 1.0 / 3.0, 1};  // normal
  classes_[2] = {1.10, 0.08, 0.95, 0.08, 1.0 / 3.0, 1};  // overloaded
}

std::array<double, 3> Eclb::Posterior(double cpu_util,
                                      double ram_util) const {
  std::array<double, 3> logp{};
  for (std::size_t c = 0; c < 3; ++c) {
    logp[c] = std::log(std::max(classes_[c].prior, 1e-6)) +
              GaussianLogPdf(cpu_util, classes_[c].mean_cpu,
                             classes_[c].var_cpu) +
              GaussianLogPdf(ram_util, classes_[c].mean_ram,
                             classes_[c].var_ram);
  }
  const double mx = *std::max_element(logp.begin(), logp.end());
  double total = 0.0;
  std::array<double, 3> post{};
  for (std::size_t c = 0; c < 3; ++c) {
    post[c] = std::exp(logp[c] - mx);
    total += post[c];
  }
  for (double& p : post) p /= total;
  return post;
}

Eclb::HostClass Eclb::Classify(double cpu_util, double ram_util) const {
  const auto post = Posterior(cpu_util, ram_util);
  const auto best =
      std::max_element(post.begin(), post.end()) - post.begin();
  return static_cast<HostClass>(best);
}

sim::Topology Eclb::Repair(const sim::Topology& current,
                           const std::vector<sim::NodeId>& failed_brokers,
                           const sim::SystemSnapshot& snapshot) {
  sim::Topology topo = current;
  for (sim::NodeId failed : failed_brokers) {
    if (!topo.is_broker(failed)) continue;
    sim::NodeId promote = sim::kNoNode;
    double best_underloaded = -1.0;
    for (sim::NodeId w : topo.workers_of(failed)) {
      const auto idx = static_cast<std::size_t>(w);
      if (idx < snapshot.alive.size() && !snapshot.alive[idx]) continue;
      const auto& m = snapshot.hosts[idx];
      const double p = Posterior(m.cpu_util, m.ram_util)[0];
      if (p > best_underloaded) {
        best_underloaded = p;
        promote = w;
      }
    }
    if (promote != sim::kNoNode) {
      topo.Promote(promote);
      topo.Demote(failed, promote);
    } else {
      for (sim::NodeId other : topo.brokers()) {
        const auto idx = static_cast<std::size_t>(other);
        const bool alive =
            idx >= snapshot.alive.size() || snapshot.alive[idx];
        if (other != failed && alive) {
          topo.Demote(failed, other);
          break;
        }
      }
    }
  }
  // Checkpoint-and-migrate pass: move one worker from the most
  // overloaded LEI to the most underloaded broker. (ECLB's load
  // balancing; only computational overload is considered, a limitation
  // the paper calls out.)
  const auto brokers = topo.brokers();
  if (brokers.size() >= 2) {
    sim::NodeId hot = sim::kNoNode, cold = sim::kNoNode;
    double hot_util = -1.0, cold_util = std::numeric_limits<double>::max();
    for (sim::NodeId b : brokers) {
      const auto idx = static_cast<std::size_t>(b);
      if (idx < snapshot.alive.size() && !snapshot.alive[idx]) continue;
      double lei = 0.0;
      const auto ws = topo.workers_of(b);
      for (sim::NodeId w : ws) {
        lei += snapshot.hosts[static_cast<std::size_t>(w)].cpu_util;
      }
      lei /= std::max<std::size_t>(1, ws.size());
      if (lei > hot_util) {
        hot_util = lei;
        hot = b;
      }
      if (lei < cold_util) {
        cold_util = lei;
        cold = b;
      }
    }
    if (hot != sim::kNoNode && cold != sim::kNoNode && hot != cold &&
        Classify(hot_util, 0.5) == HostClass::kOverloaded &&
        topo.workers_of(hot).size() >= 2) {
      topo.Assign(topo.workers_of(hot).front(), cold);
    }
  }
  return topo;
}

void Eclb::UpdateClass(ClassStats& stats, double cpu, double ram) {
  ++stats.count;
  const double n = static_cast<double>(stats.count);
  const double d_cpu = cpu - stats.mean_cpu;
  stats.mean_cpu += d_cpu / n;
  stats.var_cpu += (d_cpu * (cpu - stats.mean_cpu) - stats.var_cpu) / n;
  const double d_ram = ram - stats.mean_ram;
  stats.mean_ram += d_ram / n;
  stats.var_ram += (d_ram * (ram - stats.mean_ram) - stats.var_ram) / n;
}

void Eclb::Observe(const sim::SystemSnapshot& snapshot) {
  // Online Bayesian update: assign each host to its MAP class and refresh
  // that class's sufficient statistics and priors.
  std::array<std::size_t, 3> counts{};
  for (const auto& m : snapshot.hosts) {
    const auto c = static_cast<std::size_t>(Classify(m.cpu_util, m.ram_util));
    UpdateClass(classes_[c], m.cpu_util, m.ram_util);
    ++counts[c];
  }
  const double total = static_cast<double>(snapshot.hosts.size());
  for (std::size_t c = 0; c < 3; ++c) {
    // Smoothed prior update.
    classes_[c].prior =
        0.9 * classes_[c].prior + 0.1 * (counts[c] / std::max(1.0, total));
  }
}

double Eclb::MemoryFootprintMb() const {
  // Three Gaussian class models: negligible, but it also checkpoints task
  // state for migrations (modeled flat cost).
  return 0.4;
}

}  // namespace carol::baselines
