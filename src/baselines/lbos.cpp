#include "baselines/lbos.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace carol::baselines {

namespace {

double MeanCpu(const sim::SystemSnapshot& snapshot) {
  double total = 0.0;
  for (const auto& m : snapshot.hosts) total += m.cpu_util;
  return snapshot.hosts.empty() ? 0.0 : total / snapshot.hosts.size();
}

sim::NodeId LeastUtilizedAliveWorker(const sim::Topology& topo,
                                     const sim::SystemSnapshot& snapshot,
                                     sim::NodeId broker) {
  sim::NodeId best = sim::kNoNode;
  double least = std::numeric_limits<double>::infinity();
  for (sim::NodeId w : topo.workers_of(broker)) {
    const auto idx = static_cast<std::size_t>(w);
    if (idx < snapshot.alive.size() && !snapshot.alive[idx]) continue;
    if (snapshot.hosts[idx].cpu_util < least) {
      least = snapshot.hosts[idx].cpu_util;
      best = w;
    }
  }
  return best;
}

sim::NodeId ColdestAliveBroker(const sim::Topology& topo,
                               const sim::SystemSnapshot& snapshot,
                               sim::NodeId exclude) {
  sim::NodeId best = sim::kNoNode;
  double least = std::numeric_limits<double>::infinity();
  for (sim::NodeId b : topo.brokers()) {
    if (b == exclude) continue;
    const auto idx = static_cast<std::size_t>(b);
    if (idx < snapshot.alive.size() && !snapshot.alive[idx]) continue;
    if (snapshot.hosts[idx].cpu_util < least) {
      least = snapshot.hosts[idx].cpu_util;
      best = b;
    }
  }
  return best;
}

}  // namespace

Lbos::Lbos(LbosConfig config)
    : config_(config),
      rng_(config.seed),
      q_table_(static_cast<std::size_t>(kStates * kActions), 0.0),
      weights_{1.0 / 3, 1.0 / 3, 1.0 / 3} {}

int Lbos::StateOf(const sim::SystemSnapshot& snapshot) const {
  const double load = MeanCpu(snapshot);
  const int load_bucket = load < 0.35 ? 0 : (load < 0.8 ? 1 : 2);
  const int brokers = snapshot.topology.broker_count();
  const int broker_bucket = std::min(3, std::max(0, brokers - 1));
  return load_bucket * 4 + broker_bucket;
}

int Lbos::BestAction(int state) const {
  int best = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  for (int a = 0; a < kActions; ++a) {
    const double q =
        q_table_[static_cast<std::size_t>(state * kActions + a)];
    if (q > best_q) {
      best_q = q;
      best = a;
    }
  }
  return best;
}

sim::Topology Lbos::ApplyAction(
    int action, const sim::Topology& topo,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  sim::Topology result = topo;
  // First, repair every failed broker according to the chosen action's
  // structural preference.
  for (sim::NodeId failed : failed_brokers) {
    if (!result.is_broker(failed)) continue;
    const sim::NodeId promote =
        LeastUtilizedAliveWorker(result, snapshot, failed);
    const sim::NodeId merge = ColdestAliveBroker(result, snapshot, failed);
    if ((action == 1 || promote == sim::kNoNode) && merge != sim::kNoNode) {
      result.Demote(failed, merge);  // merge-into-coldest
    } else if (promote != sim::kNoNode) {
      result.Promote(promote);
      result.Demote(failed, promote);
    }
  }
  // Then the action's load-balancing move.
  switch (action) {
    case 0: {  // promote-least-utilized (scale the broker layer up)
      sim::NodeId hottest = sim::kNoNode;
      double most = -1.0;
      for (sim::NodeId b : result.brokers()) {
        const auto idx = static_cast<std::size_t>(b);
        if (idx < snapshot.alive.size() && !snapshot.alive[idx]) continue;
        if (snapshot.hosts[idx].cpu_util > most &&
            result.workers_of(b).size() >= 3) {
          most = snapshot.hosts[idx].cpu_util;
          hottest = b;
        }
      }
      if (hottest != sim::kNoNode) {
        const sim::NodeId w =
            LeastUtilizedAliveWorker(result, snapshot, hottest);
        if (w != sim::kNoNode) result.Promote(w);
      }
      break;
    }
    case 2: {  // rebalance one worker from hottest to coldest LEI
      const auto brokers = result.brokers();
      if (brokers.size() >= 2) {
        sim::NodeId hot = sim::kNoNode;
        double most = -1.0;
        for (sim::NodeId b : brokers) {
          double lei = 0.0;
          for (sim::NodeId w : result.workers_of(b)) {
            lei += snapshot.hosts[static_cast<std::size_t>(w)].cpu_util;
          }
          if (lei > most && result.workers_of(b).size() >= 2) {
            most = lei;
            hot = b;
          }
        }
        const sim::NodeId cold = ColdestAliveBroker(result, snapshot, hot);
        if (hot != sim::kNoNode && cold != sim::kNoNode) {
          const sim::NodeId w = LeastUtilizedAliveWorker(result, snapshot, hot);
          if (w != sim::kNoNode) result.Assign(w, cold);
        }
      }
      break;
    }
    default:
      break;  // merge handled above / keep-structure
  }
  return result.IsValid() ? result : topo;
}

sim::Topology Lbos::Repair(const sim::Topology& current,
                           const std::vector<sim::NodeId>& failed_brokers,
                           const sim::SystemSnapshot& snapshot) {
  // Remediation protocol parity: like every other model, LBOS only
  // restructures the topology when a broker failure needs repair. (Its
  // continuous load-balancing acts on request dispatch, which the shared
  // underlying scheduler already performs.)
  if (failed_brokers.empty()) return current;
  // The GA re-evolves the reward weights before every decision (LBOS
  // derives its QoS weights genetically).
  EvolveWeights(snapshot);
  const int state = StateOf(snapshot);
  const int action = rng_.Bernoulli(config_.epsilon)
                         ? rng_.UniformInt(0, kActions - 1)
                         : BestAction(state);
  last_state_ = state;
  last_action_ = action;
  return ApplyAction(action, current, failed_brokers, snapshot);
}

void Lbos::EvolveWeights(const sim::SystemSnapshot& snapshot) {
  // Small steady-state GA: individuals are weight triples; fitness favors
  // weights aligned with the currently dominant QoS pressure.
  const double load = MeanCpu(snapshot);
  const double slo = snapshot.slo_rate;
  auto fitness = [&](const std::array<double, 3>& w) {
    // Pressure vector: energy matters when idle, slo/response when hot.
    const std::array<double, 3> pressure = {1.0 - std::min(1.0, load),
                                            slo, std::min(1.0, load)};
    double dot = 0.0;
    for (int i = 0; i < 3; ++i) dot += w[i] * pressure[i];
    return dot;
  };
  std::vector<std::array<double, 3>> population;
  population.push_back(weights_);
  for (int i = 1; i < config_.ga_population; ++i) {
    std::array<double, 3> w;
    double total = 0.0;
    for (double& v : w) {
      v = rng_.Uniform(0.05, 1.0);
      total += v;
    }
    for (double& v : w) v /= total;
    population.push_back(w);
  }
  for (int gen = 0; gen < config_.ga_generations; ++gen) {
    std::sort(population.begin(), population.end(),
              [&](const auto& a, const auto& b) {
                return fitness(a) > fitness(b);
              });
    // Elitist crossover+mutation over the top half.
    const std::size_t half = population.size() / 2;
    for (std::size_t i = half; i < population.size(); ++i) {
      const auto& p1 = population[rng_.Choice(half)];
      const auto& p2 = population[rng_.Choice(half)];
      double total = 0.0;
      for (int k = 0; k < 3; ++k) {
        population[i][k] = 0.5 * (p1[k] + p2[k]) +
                           rng_.Normal(0.0, 0.05);
        population[i][k] = std::max(0.01, population[i][k]);
        total += population[i][k];
      }
      for (int k = 0; k < 3; ++k) population[i][k] /= total;
    }
  }
  weights_ = *std::max_element(
      population.begin(), population.end(),
      [&](const auto& a, const auto& b) { return fitness(a) < fitness(b); });
}

void Lbos::Observe(const sim::SystemSnapshot& snapshot) {
  if (last_state_ < 0) return;
  // Reward: negative weighted QoS cost of the interval just executed.
  const double energy_norm =
      snapshot.interval_energy_kwh / std::max(1e-9, 16.0 * 7.3 * 300.0 / 3.6e6);
  const double response_norm =
      std::min(1.0, snapshot.avg_response_s / 600.0);
  const double reward = -(weights_[0] * energy_norm +
                          weights_[1] * snapshot.slo_rate +
                          weights_[2] * response_norm);
  const int next_state = StateOf(snapshot);
  double& q = Q(last_state_, last_action_);
  const double best_next =
      q_table_[static_cast<std::size_t>(next_state * kActions +
                                        BestAction(next_state))];
  q += config_.learning_rate *
       (reward + config_.discount * best_next - q);
}

double Lbos::MemoryFootprintMb() const {
  // Q-table of 12x4 doubles plus the GA population: the lightweight
  // footprint the paper attributes to LBOS.
  return (q_table_.size() + 3.0 * config_.ga_population) * sizeof(double) /
             (1024.0 * 1024.0) +
         0.2;
}

}  // namespace carol::baselines
