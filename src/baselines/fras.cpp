#include "baselines/fras.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/node_shift.h"

namespace carol::baselines {

namespace {
constexpr int kInputWidth = 8;

double Tri(double x, double c, double w) {
  return std::max(0.0, 1.0 - std::abs(x - c) / w);
}
}  // namespace

Fras::Fras(FrasConfig config) : config_(config), rng_(config.seed) {
  cell_ = std::make_unique<nn::LstmCell>(
      kInputWidth, static_cast<std::size_t>(config_.hidden), rng_,
      "fras.lstm");
  head_ = std::make_unique<nn::Dense>(
      static_cast<std::size_t>(config_.hidden), 1, rng_, "fras.head",
      nn::Activation::kSigmoid);
  std::vector<nn::Parameter*> params = cell_->Parameters();
  for (auto* p : head_->Parameters()) params.push_back(p);
  optimizer_ =
      std::make_unique<nn::Adam>(params, config_.learning_rate);
}

Fras::~Fras() = default;

std::vector<double> Fras::FuzzyEncode(const sim::Topology& topo,
                                      const sim::SystemSnapshot& snap) {
  double mean_cpu = 0.0, max_cpu = 0.0, mean_ram = 0.0, failed = 0.0;
  for (const auto& m : snap.hosts) {
    mean_cpu += m.cpu_util;
    max_cpu = std::max(max_cpu, m.cpu_util);
    mean_ram += m.ram_util;
    failed += m.failed ? 1.0 : 0.0;
  }
  const double h = std::max<std::size_t>(1, snap.hosts.size());
  mean_cpu /= h;
  mean_ram /= h;
  failed /= h;
  // Fuzzy memberships (low/mid/high) of the mean load, plus structural
  // features of the candidate topology.
  return {Tri(mean_cpu, 0.1, 0.4),
          Tri(mean_cpu, 0.5, 0.4),
          Tri(mean_cpu, 1.0, 0.5),
          std::min(1.0, max_cpu / 2.0),
          std::min(1.0, mean_ram),
          static_cast<double>(topo.broker_count()) / h,
          failed,
          std::min(1.0, static_cast<double>(snap.active_tasks) / 32.0)};
}

double Fras::PredictQos(const sim::Topology& candidate,
                        const sim::SystemSnapshot& snapshot) {
  // Unroll the recurrent surrogate over the history window and the
  // candidate-encoded present; the sigmoid head emits normalized QoS cost.
  nn::Tape tape;
  cell_->ClearBindings();
  head_->ClearBindings();
  auto state = cell_->InitialState(tape, 1);
  for (const auto& [input, qos] : history_) {
    nn::Matrix x(1, kInputWidth);
    for (std::size_t k = 0; k < input.size(); ++k) x(0, k) = input[k];
    state = cell_->Forward(tape, tape.Leaf(x), state);
  }
  const auto present = FuzzyEncode(candidate, snapshot);
  nn::Matrix x(1, kInputWidth);
  for (std::size_t k = 0; k < present.size(); ++k) x(0, k) = present[k];
  state = cell_->Forward(tape, tape.Leaf(x), state);
  return head_->Forward(tape, state.h).scalar();
}

sim::Topology Fras::PolicyRepair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  sim::Topology topo = current;
  std::vector<bool> alive = snapshot.alive;
  if (alive.size() != static_cast<std::size_t>(topo.num_nodes())) {
    alive.assign(static_cast<std::size_t>(topo.num_nodes()), true);
  }
  for (sim::NodeId b : failed_brokers) {
    if (static_cast<std::size_t>(b) < alive.size()) {
      alive[static_cast<std::size_t>(b)] = false;
    }
  }
  for (sim::NodeId failed : failed_brokers) {
    if (!topo.is_broker(failed)) continue;
    const auto candidates =
        core::FailureNeighbors(topo, failed, alive, core::NodeShiftOptions{});
    if (candidates.empty()) continue;
    const sim::Topology* best = &candidates.front();
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& cand : candidates) {
      const double cost = PredictQos(cand, snapshot);
      if (cost < best_cost) {
        best_cost = cost;
        best = &cand;
      }
    }
    topo = *best;
  }
  return topo;
}

sim::Topology Fras::Repair(const sim::Topology& current,
                           const std::vector<sim::NodeId>& failed_brokers,
                           const sim::SystemSnapshot& snapshot) {
  return PolicyRepair(current, failed_brokers, snapshot);
}

void Fras::FineTuneStep() {
  // One BPTT pass over the stored window against observed QoS labels.
  nn::Tape tape;
  cell_->ClearBindings();
  head_->ClearBindings();
  auto state = cell_->InitialState(tape, 1);
  nn::Value loss;
  bool first = true;
  for (const auto& [input, qos] : history_) {
    nn::Matrix x(1, kInputWidth);
    for (std::size_t k = 0; k < input.size(); ++k) x(0, k) = input[k];
    state = cell_->Forward(tape, tape.Leaf(x), state);
    nn::Value pred = head_->Forward(tape, state.h);
    nn::Value target = tape.Leaf(nn::Matrix(1, 1, qos));
    nn::Value diff = tape.Sub(pred, target);
    nn::Value sq = tape.Mul(diff, diff);
    loss = first ? sq : tape.Add(loss, sq);
    first = false;
  }
  if (first) return;
  nn::Value mean_loss =
      tape.Scale(loss, 1.0 / static_cast<double>(history_.size()));
  optimizer_->ZeroGrad();
  tape.Backward(tape.SumAll(mean_loss));
  cell_->CollectGrads();
  head_->CollectGrads();
  optimizer_->Step();
}

void Fras::Observe(const sim::SystemSnapshot& snapshot) {
  const double energy_norm = snapshot.interval_energy_kwh /
                             std::max(1e-9, 16.0 * 7.3 * 300.0 / 3.6e6);
  const double qos = std::clamp(
      0.5 * energy_norm + 0.5 * snapshot.slo_rate, 0.0, 1.0);
  history_.emplace_back(FuzzyEncode(snapshot.topology, snapshot), qos);
  while (history_.size() > static_cast<std::size_t>(config_.window)) {
    history_.pop_front();
  }
  // FRAS fine-tunes its surrogate every interval — its recurring
  // overhead in Fig. 5(f).
  for (int s = 0; s < config_.finetune_steps; ++s) FineTuneStep();
  ++finetune_invocations_;
}

double Fras::MemoryFootprintMb() const {
  std::size_t params = 0;
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
  auto* self = const_cast<Fras*>(this);
  params += self->cell_->ParameterCount();
  params += self->head_->ParameterCount();
  // Parameters + Adam moments + BPTT activation tape over the window.
  const double bytes =
      static_cast<double>(params) * sizeof(double) * 3.0 +
      static_cast<double>(config_.window * config_.hidden * 8) * 8.0;
  return bytes / (1024.0 * 1024.0) + 0.3;
}

}  // namespace carol::baselines
