// StepGAN baseline (Feng et al., "Make the rocket intelligent at IoT
// edge: stepwise GAN for anomaly detection", IoT-J 2021) —
// reconstruction model, paper Table I row 10. Converts the metric
// time-series into matrices and trains a GAN stepwise over expanding
// sub-windows; the discriminator score of the latest window is the
// anomaly signal. Detection-only: repair borrows FRAS's policy (§V).
// Carrying both a generator and a discriminator gives it the
// characteristic GAN memory footprint.
#ifndef CAROL_BASELINES_STEPGAN_H_
#define CAROL_BASELINES_STEPGAN_H_

#include <deque>
#include <memory>

#include "baselines/fras.h"
#include "core/resilience.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace carol::baselines {

struct StepGanConfig {
  int hidden = 96;
  int latent = 16;
  int window = 8;
  double learning_rate = 1e-3;
  int train_steps_per_interval = 3;
  unsigned seed = 19;
};

class StepGan : public core::ResilienceModel {
 public:
  explicit StepGan(StepGanConfig config = {});
  ~StepGan() override;

  std::string name() const override { return "StepGAN"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // Discriminator realness score of the current window matrix; low
  // scores flag anomalies. 0.5 until the window fills.
  double WindowScore();

 private:
  std::vector<double> Summarize(const sim::SystemSnapshot& snap) const;
  nn::Matrix WindowMatrix(std::size_t steps) const;
  void TrainStep(std::size_t steps);

  StepGanConfig config_;
  common::Rng rng_;
  std::unique_ptr<nn::Mlp> generator_;
  std::unique_ptr<nn::Mlp> discriminator_;
  std::unique_ptr<nn::Adam> gen_opt_;
  std::unique_ptr<nn::Adam> disc_opt_;
  Fras policy_;
  std::deque<std::vector<double>> window_;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_STEPGAN_H_
