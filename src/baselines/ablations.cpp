#include "baselines/ablations.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/node_shift.h"

namespace carol::baselines {

namespace {
constexpr int kGenNoise = 4;
constexpr int kGenInput = core::FeatureEncoder::kSchedFeatures +
                          core::FeatureEncoder::kRoleFeatures + kGenNoise;
}  // namespace

std::unique_ptr<core::CarolModel> MakeAlwaysFineTune(
    core::CarolConfig config) {
  config.policy = core::FineTunePolicy::kAlways;
  auto model = std::make_unique<core::CarolModel>(config);
  model->set_name("Always-Fine-Tune");
  return model;
}

std::unique_ptr<core::CarolModel> MakeNeverFineTune(
    core::CarolConfig config) {
  config.policy = core::FineTunePolicy::kNever;
  auto model = std::make_unique<core::CarolModel>(config);
  model->set_name("Never-Fine-Tune");
  return model;
}

// ---------------------------------------------------------------- WithGAN

WithGanSurrogate::WithGanSurrogate(WithGanConfig config)
    : config_(config),
      rng_(config.seed),
      discriminator_(std::make_unique<core::GonModel>(config.discriminator)),
      pot_(config.pot) {
  generator_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{
          kGenInput, static_cast<std::size_t>(config_.generator_hidden),
          static_cast<std::size_t>(config_.generator_hidden),
          core::FeatureEncoder::kMetricFeatures},
      rng_, "gan.gen", nn::Activation::kSigmoid);
  gen_opt_ = std::make_unique<nn::Adam>(generator_->Parameters(),
                                        config_.generator_lr);
}

WithGanSurrogate::~WithGanSurrogate() = default;

nn::Matrix WithGanSurrogate::PredictMetrics(
    const core::EncodedState& context) {
  // One forward pass per host row: [S_i, roles_i, noise] -> M_i.
  const std::size_t h = context.num_hosts();
  nn::Matrix input(h, kGenInput);
  for (std::size_t i = 0; i < h; ++i) {
    input(i, 0) = context.s(i, 0);
    input(i, 1) = context.s(i, 1);
    input(i, 2) = context.roles(i, 0);
    input(i, 3) = context.roles(i, 1);
    for (int k = 0; k < kGenNoise; ++k) {
      input(i, 4 + static_cast<std::size_t>(k)) = 0.5;  // mean noise
    }
  }
  nn::Tape tape;
  generator_->ClearBindings();
  return generator_->Forward(tape, tape.Leaf(input)).val();
}

double WithGanSurrogate::ScoreTopology(
    const sim::Topology& candidate, const sim::SystemSnapshot& snapshot) {
  const core::EncodedState ctx =
      encoder_.EncodeForTopology(snapshot, candidate);
  const nn::Matrix m = PredictMetrics(ctx);
  double energy = 0.0, slo = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    energy += m(i, core::FeatureEncoder::kEnergyColumn);
    slo += m(i, core::FeatureEncoder::kSloColumn);
  }
  const double h = std::max<std::size_t>(1, m.rows());
  return (config_.alpha * energy + config_.beta * slo) / h;
}

sim::Topology WithGanSurrogate::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  if (failed_brokers.empty()) return current;
  sim::Topology topo = current;
  std::vector<bool> alive = snapshot.alive;
  if (alive.size() != static_cast<std::size_t>(topo.num_nodes())) {
    alive.assign(static_cast<std::size_t>(topo.num_nodes()), true);
  }
  for (sim::NodeId b : failed_brokers) {
    if (static_cast<std::size_t>(b) < alive.size()) {
      alive[static_cast<std::size_t>(b)] = false;
    }
  }
  for (sim::NodeId failed : failed_brokers) {
    if (!topo.is_broker(failed)) continue;
    const auto repairs = core::FailureNeighbors(topo, failed, alive,
                                                core::NodeShiftOptions{});
    if (repairs.empty()) continue;
    core::TabuSearch search(config_.tabu);
    const sim::Topology start = repairs[rng_.Choice(repairs.size())];
    topo = search.Optimize(
        start,
        [&](const sim::Topology& g) {
          return core::LocalNeighbors(g, alive, core::NodeShiftOptions{});
        },
        [&](const sim::Topology& g) {
          return ScoreTopology(g, snapshot);
        });
  }
  return topo;
}

void WithGanSurrogate::TrainOffline(const workload::Trace& trace,
                                    int epochs) {
  std::vector<core::EncodedState> data;
  data.reserve(trace.size());
  for (const auto& record : trace) {
    data.push_back(encoder_.EncodeRecord(record));
  }
  // Alternating adversarial training: the discriminator trains through
  // the GON machinery; the generator learns to fool it AND to match the
  // recorded metrics (a reconstruction term stabilizes the small GAN).
  for (int epoch = 0; epoch < epochs; ++epoch) {
    discriminator_->TrainEpoch(data);
    const auto order = rng_.Permutation(data.size());
    const std::size_t take = std::min<std::size_t>(data.size(), 64);
    for (std::size_t idx = 0; idx < take; ++idx) {
      const core::EncodedState& state = data[order[idx]];
      nn::Tape tape;
      generator_->ClearBindings();
      const std::size_t h = state.num_hosts();
      nn::Matrix input(h, kGenInput);
      for (std::size_t i = 0; i < h; ++i) {
        input(i, 0) = state.s(i, 0);
        input(i, 1) = state.s(i, 1);
        input(i, 2) = state.roles(i, 0);
        input(i, 3) = state.roles(i, 1);
        for (int k = 0; k < kGenNoise; ++k) {
          input(i, 4 + static_cast<std::size_t>(k)) =
              rng_.Uniform(0.0, 1.0);
        }
      }
      nn::Value fake = generator_->Forward(tape, tape.Leaf(input));
      nn::Value recon = nn::MseLoss(tape, fake, state.m);
      gen_opt_->ZeroGrad();
      tape.Backward(recon);
      generator_->CollectGrads();
      gen_opt_->Step();
    }
  }
}

void WithGanSurrogate::Observe(const sim::SystemSnapshot& snapshot) {
  const core::EncodedState state = encoder_.Encode(snapshot);
  const double confidence = discriminator_->Discriminate(state);
  pot_.Update(confidence);
  gamma_.push_back(state);
  if (gamma_.size() > 64) gamma_.erase(gamma_.begin());
  if (pot_.Breach(confidence) && !gamma_.empty()) {
    discriminator_->FineTune(gamma_, config_.finetune_epochs);
    gamma_.clear();
  }
}

double WithGanSurrogate::MemoryFootprintMb() const {
  auto* self = const_cast<WithGanSurrogate*>(this);
  const double gen_params =
      static_cast<double>(self->generator_->ParameterCount()) *
      sizeof(double) * 3.0 / (1024.0 * 1024.0);
  return discriminator_->MemoryFootprintMb() + gen_params + 0.5;
}

// ---------------------------------------------- Traditional surrogate

TraditionalSurrogate::TraditionalSurrogate(
    TraditionalSurrogateConfig config)
    : config_(config), rng_(config.seed) {
  // Features: broker fraction, LEI imbalance, mean/max cpu, mean ram,
  // mean sched demand, failed fraction -> (energy_norm, slo_norm).
  net_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{7, static_cast<std::size_t>(config_.hidden),
                               static_cast<std::size_t>(config_.hidden), 2},
      rng_, "trad.net", nn::Activation::kSigmoid);
  optimizer_ =
      std::make_unique<nn::Adam>(net_->Parameters(), config_.learning_rate);
}

TraditionalSurrogate::~TraditionalSurrogate() = default;

std::vector<double> TraditionalSurrogate::TopologyFeatures(
    const sim::Topology& topo, const sim::SystemSnapshot& snapshot) {
  const double h = static_cast<double>(topo.num_nodes());
  double mean_cpu = 0.0, max_cpu = 0.0, mean_ram = 0.0, sched = 0.0,
         failed = 0.0;
  for (const auto& m : snapshot.hosts) {
    mean_cpu += m.cpu_util;
    max_cpu = std::max(max_cpu, m.cpu_util);
    mean_ram += m.ram_util;
    sched += m.sched_cpu_demand_mips;
    failed += m.failed ? 1.0 : 0.0;
  }
  double imbalance = 0.0;
  const auto brokers = topo.brokers();
  if (!brokers.empty()) {
    const double mean_sz = static_cast<double>(topo.worker_count()) /
                           static_cast<double>(brokers.size());
    for (sim::NodeId b : brokers) {
      imbalance += std::abs(
          static_cast<double>(topo.workers_of(b).size()) - mean_sz);
    }
  }
  return {static_cast<double>(brokers.size()) / h,
          imbalance / h,
          std::min(1.0, mean_cpu / h),
          std::min(1.0, max_cpu / 2.0),
          std::min(1.0, mean_ram / h),
          std::min(1.0, sched / (h * 5000.0)),
          failed / h};
}

std::pair<double, double> TraditionalSurrogate::PredictQos(
    const sim::Topology& candidate, const sim::SystemSnapshot& snapshot) {
  const auto features = TopologyFeatures(candidate, snapshot);
  nn::Matrix x(1, features.size());
  for (std::size_t k = 0; k < features.size(); ++k) x(0, k) = features[k];
  nn::Tape tape;
  net_->ClearBindings();
  const nn::Matrix out = net_->Forward(tape, tape.Leaf(x)).val();
  return {out(0, 0), out(0, 1)};
}

sim::Topology TraditionalSurrogate::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  if (failed_brokers.empty()) return current;
  sim::Topology topo = current;
  std::vector<bool> alive = snapshot.alive;
  if (alive.size() != static_cast<std::size_t>(topo.num_nodes())) {
    alive.assign(static_cast<std::size_t>(topo.num_nodes()), true);
  }
  for (sim::NodeId b : failed_brokers) {
    if (static_cast<std::size_t>(b) < alive.size()) {
      alive[static_cast<std::size_t>(b)] = false;
    }
  }
  for (sim::NodeId failed : failed_brokers) {
    if (!topo.is_broker(failed)) continue;
    const auto repairs = core::FailureNeighbors(topo, failed, alive,
                                                core::NodeShiftOptions{});
    if (repairs.empty()) continue;
    core::TabuSearch search(config_.tabu);
    topo = search.Optimize(
        repairs[rng_.Choice(repairs.size())],
        [&](const sim::Topology& g) {
          return core::LocalNeighbors(g, alive, core::NodeShiftOptions{});
        },
        [&](const sim::Topology& g) {
          const auto [energy, slo] = PredictQos(g, snapshot);
          return config_.alpha * energy + config_.beta * slo;
        });
  }
  return topo;
}

void TraditionalSurrogate::SupervisedStep(
    const std::vector<double>& features, double energy, double slo) {
  nn::Matrix x(1, features.size());
  for (std::size_t k = 0; k < features.size(); ++k) x(0, k) = features[k];
  nn::Matrix target(1, 2);
  target(0, 0) = energy;
  target(0, 1) = slo;
  nn::Tape tape;
  net_->ClearBindings();
  nn::Value pred = net_->Forward(tape, tape.Leaf(x));
  nn::Value loss = nn::MseLoss(tape, pred, target);
  optimizer_->ZeroGrad();
  tape.Backward(loss);
  net_->CollectGrads();
  optimizer_->Step();
}

void TraditionalSurrogate::TrainOffline(const workload::Trace& trace,
                                        int epochs) {
  // Supervised regression on recorded (topology features -> QoS) pairs.
  std::vector<std::pair<std::vector<double>, std::pair<double, double>>>
      data;
  for (const auto& record : trace) {
    sim::SystemSnapshot snap;
    snap.topology = sim::Topology::FromAssignment(record.assignment);
    snap.hosts.resize(record.host_features.size());
    for (std::size_t i = 0; i < record.host_features.size(); ++i) {
      const auto& f = record.host_features[i];
      snap.hosts[i].cpu_util = f[0];
      snap.hosts[i].ram_util = f[1];
      snap.hosts[i].sched_cpu_demand_mips = f[9];
      snap.hosts[i].failed = f[12] != 0.0;
    }
    const double energy_norm =
        record.energy_kwh / std::max(1e-9, 16.0 * 7.3 * 300.0 / 3.6e6);
    data.emplace_back(TopologyFeatures(snap.topology, snap),
                      std::make_pair(std::clamp(energy_norm, 0.0, 1.0),
                                     std::clamp(record.slo_rate, 0.0, 1.0)));
  }
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto idx : rng_.Permutation(data.size())) {
      SupervisedStep(data[idx].first, data[idx].second.first,
                     data[idx].second.second);
    }
  }
}

void TraditionalSurrogate::Observe(const sim::SystemSnapshot& snapshot) {
  const double energy_norm = snapshot.interval_energy_kwh /
                             std::max(1e-9, 16.0 * 7.3 * 300.0 / 3.6e6);
  recent_.emplace_back(
      TopologyFeatures(snapshot.topology, snapshot),
      std::make_pair(std::clamp(energy_norm, 0.0, 1.0),
                     std::clamp(snapshot.slo_rate, 0.0, 1.0)));
  if (recent_.size() > 64) recent_.erase(recent_.begin());
  // No confidence signal: the surrogate must fine-tune every interval
  // (the paper's stated drawback of traditional surrogates).
  for (int s = 0; s < config_.finetune_steps_per_interval; ++s) {
    const auto& [features, qos] = recent_[rng_.Choice(recent_.size())];
    SupervisedStep(features, qos.first, qos.second);
  }
}

double TraditionalSurrogate::MemoryFootprintMb() const {
  auto* self = const_cast<TraditionalSurrogate*>(this);
  return static_cast<double>(self->net_->ParameterCount()) *
             sizeof(double) * 3.0 / (1024.0 * 1024.0) +
         0.2;
}

}  // namespace carol::baselines
