#include "baselines/stepgan.h"

#include <algorithm>
#include <cmath>

namespace carol::baselines {

namespace {
constexpr int kFeatureWidth = 8;
}

StepGan::StepGan(StepGanConfig config)
    : config_(config),
      rng_(config.seed),
      policy_(FrasConfig{.seed = config.seed + 1}) {
  const auto flat =
      static_cast<std::size_t>(config_.window * kFeatureWidth);
  generator_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{static_cast<std::size_t>(config_.latent),
                               static_cast<std::size_t>(config_.hidden),
                               flat},
      rng_, "stepgan.gen", nn::Activation::kSigmoid);
  discriminator_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{flat,
                               static_cast<std::size_t>(config_.hidden),
                               static_cast<std::size_t>(config_.hidden / 2),
                               1},
      rng_, "stepgan.disc", nn::Activation::kSigmoid);
  gen_opt_ = std::make_unique<nn::Adam>(generator_->Parameters(),
                                        config_.learning_rate);
  disc_opt_ = std::make_unique<nn::Adam>(discriminator_->Parameters(),
                                         config_.learning_rate);
}

StepGan::~StepGan() = default;

std::vector<double> StepGan::Summarize(
    const sim::SystemSnapshot& snap) const {
  double cpu = 0, ram = 0, net = 0, slo = 0, failed = 0, max_cpu = 0;
  for (const auto& m : snap.hosts) {
    cpu += m.cpu_util;
    ram += m.ram_util;
    net += m.net_util;
    slo += m.slo_violation_rate;
    failed += m.failed ? 1.0 : 0.0;
    max_cpu = std::max(max_cpu, m.cpu_util);
  }
  const double h = std::max<std::size_t>(1, snap.hosts.size());
  return {std::min(1.0, cpu / h),
          std::min(1.0, ram / h),
          std::min(1.0, net / h),
          std::min(1.0, slo / h),
          failed / h,
          std::min(1.0, max_cpu / 2.0),
          static_cast<double>(snap.topology.broker_count()) / h,
          std::min(1.0, snap.avg_response_s / 600.0)};
}

nn::Matrix StepGan::WindowMatrix(std::size_t steps) const {
  // The time-series-to-matrix conversion: the last `steps` summaries,
  // zero-padded to the full window and flattened row-major.
  nn::Matrix flat(1, static_cast<std::size_t>(config_.window) *
                         kFeatureWidth);
  const std::size_t have = std::min(steps, window_.size());
  const std::size_t offset = window_.size() - have;
  for (std::size_t t = 0; t < have; ++t) {
    const auto& row = window_[offset + t];
    for (std::size_t k = 0; k < row.size(); ++k) {
      flat(0, t * kFeatureWidth + k) = row[k];
    }
  }
  return flat;
}

double StepGan::WindowScore() {
  if (window_.empty()) return 0.5;
  nn::Tape tape;
  discriminator_->ClearBindings();
  return discriminator_->Forward(tape, tape.Leaf(WindowMatrix(window_.size())))
      .scalar();
}

void StepGan::TrainStep(std::size_t steps) {
  if (window_.empty()) return;
  const nn::Matrix real = WindowMatrix(steps);
  // Generator forward (fake window from noise).
  nn::Matrix noise(1, static_cast<std::size_t>(config_.latent));
  for (double& v : noise.flat()) v = rng_.Normal(0.0, 1.0);

  {
    // Discriminator update on (real, fake.detach()).
    nn::Tape tape;
    generator_->ClearBindings();
    discriminator_->ClearBindings();
    nn::Value fake = generator_->Forward(tape, tape.Leaf(noise));
    nn::Value fake_const = tape.Leaf(fake.val());  // detached copy
    generator_->ClearBindings();                   // drop gen bindings
    nn::Value d_real =
        discriminator_->Forward(tape, tape.Leaf(real));
    nn::Value d_fake = discriminator_->Forward(tape, fake_const);
    nn::Value loss = nn::GanDiscriminatorLoss(tape, d_real, d_fake);
    disc_opt_->ZeroGrad();
    tape.Backward(loss);
    discriminator_->CollectGrads();
    disc_opt_->Step();
  }
  {
    // Generator update: maximize log D(G(z)).
    nn::Tape tape;
    generator_->ClearBindings();
    discriminator_->ClearBindings();
    nn::Value fake = generator_->Forward(tape, tape.Leaf(noise));
    nn::Value d_fake = discriminator_->Forward(tape, fake);
    nn::Value loss = tape.Neg(tape.Log(d_fake));
    gen_opt_->ZeroGrad();
    tape.Backward(tape.SumAll(loss));
    generator_->CollectGrads();
    discriminator_->ClearBindings();  // generator step leaves D untouched
    gen_opt_->Step();
  }
}

sim::Topology StepGan::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  return policy_.PolicyRepair(current, failed_brokers, snapshot);
}

void StepGan::Observe(const sim::SystemSnapshot& snapshot) {
  window_.push_back(Summarize(snapshot));
  while (window_.size() > static_cast<std::size_t>(config_.window)) {
    window_.pop_front();
  }
  // Stepwise training: expanding sub-windows (1, half, full), a few
  // passes each interval.
  for (int s = 0; s < config_.train_steps_per_interval; ++s) {
    TrainStep(1);
    TrainStep(window_.size() / 2 + 1);
    TrainStep(window_.size());
  }
  policy_.Observe(snapshot);
}

double StepGan::MemoryFootprintMb() const {
  auto* self = const_cast<StepGan*>(this);
  const std::size_t params = self->generator_->ParameterCount() +
                             self->discriminator_->ParameterCount();
  // Both networks with Adam state, plus the window-matrix buffers.
  return static_cast<double>(params) * sizeof(double) * 3.0 /
             (1024.0 * 1024.0) +
         policy_.MemoryFootprintMb() + 0.5;
}

}  // namespace carol::baselines
