#include "baselines/dyverse.h"

#include <algorithm>
#include <limits>

namespace carol::baselines {

sim::Topology Dyverse::Repair(
    const sim::Topology& current,
    const std::vector<sim::NodeId>& failed_brokers,
    const sim::SystemSnapshot& snapshot) {
  sim::Topology topo = current;
  for (sim::NodeId failed : failed_brokers) {
    if (!topo.is_broker(failed)) continue;
    // DYVERSE policy: the orphan with the least CPU utilization becomes
    // the next broker of the same LEI.
    sim::NodeId promote = sim::kNoNode;
    double least = std::numeric_limits<double>::infinity();
    for (sim::NodeId w : topo.workers_of(failed)) {
      const auto idx = static_cast<std::size_t>(w);
      if (idx < snapshot.alive.size() && !snapshot.alive[idx]) continue;
      const double util = snapshot.hosts[idx].cpu_util;
      if (util < least) {
        least = util;
        promote = w;
      }
    }
    if (promote != sim::kNoNode) {
      topo.Promote(promote);
      topo.Demote(failed, promote);
    } else {
      for (sim::NodeId other : topo.brokers()) {
        const auto idx = static_cast<std::size_t>(other);
        const bool other_alive =
            idx >= snapshot.alive.size() || snapshot.alive[idx];
        if (other != failed && other_alive) {
          topo.Demote(failed, other);
          break;
        }
      }
    }
  }
  return topo;
}

void Dyverse::Observe(const sim::SystemSnapshot& snapshot) {
  // Dynamic vertical scaling: re-derive per-host priority scores from the
  // three heuristics every interval. This is DYVERSE's recurring
  // maintenance work (its Fig. 5(f) overhead).
  const std::size_t h = snapshot.hosts.size();
  priorities_.assign(h, 0.0);
  for (int sweep = 0; sweep < config_.rescoring_sweeps; ++sweep) {
    for (std::size_t i = 0; i < h; ++i) {
      const auto& m = snapshot.hosts[i];
      // System-aware: free capacity headroom.
      const double system_score = 1.0 - std::min(1.0, m.cpu_util);
      // Community-aware: relative load of the host's LEI.
      const sim::NodeId broker =
          snapshot.topology.broker_of(static_cast<sim::NodeId>(i));
      double lei_util = 0.0;
      int lei_size = 0;
      for (sim::NodeId w :
           snapshot.topology.workers_of(broker)) {
        lei_util += snapshot.hosts[static_cast<std::size_t>(w)].cpu_util;
        ++lei_size;
      }
      const double community_score =
          lei_size > 0 ? 1.0 - std::min(1.0, lei_util / lei_size) : 0.5;
      // Workload-aware: demand pressure of resident tasks.
      const double workload_score =
          1.0 / (1.0 + m.task_cpu_demand_mips / 1000.0);
      priorities_[i] = config_.system_weight * system_score +
                       config_.community_weight * community_score +
                       config_.workload_weight * workload_score;
    }
  }
}

double Dyverse::MemoryFootprintMb() const {
  // A priority table and three scalar heuristics: effectively noise.
  return static_cast<double>(priorities_.capacity()) * sizeof(double) /
             (1024.0 * 1024.0) +
         0.05;
}

}  // namespace carol::baselines
