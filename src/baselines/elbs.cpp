#include "baselines/elbs.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/node_shift.h"

namespace carol::baselines {

namespace {
// Triangular membership centered at c with half-width w.
double Tri(double x, double c, double w) {
  return std::max(0.0, 1.0 - std::abs(x - c) / w);
}
}  // namespace

Elbs::Elbs(ElbsConfig config) : config_(config) {
  // The PNN pattern layer is allocated and seeded up front (offline
  // training in the original system); online observations then refine it.
  common::Rng rng(991);
  const std::size_t seed_count = config_.max_exemplars / 2;
  exemplars_.reserve(config_.max_exemplars);
  for (std::size_t i = 0; i < seed_count; ++i) {
    Exemplar e;
    const double load = rng.Uniform(0.0, 1.5);
    const double brokers = rng.Uniform(0.05, 0.6);
    e.features = {brokers,
                  std::min(1.0, load),
                  std::min(1.0, load * rng.Uniform(0.8, 1.4) / 2.0),
                  std::min(1.0, load * rng.Uniform(0.5, 1.0)),
                  rng.Uniform(0.0, 0.4),
                  rng.Uniform(0.3, 0.7)};
    // Prior belief: QoS degrades with load and with extreme broker
    // fractions (too few or too many).
    e.qos_label = std::clamp(
        0.5 * load + 0.8 * std::abs(brokers - 0.25) + rng.Normal(0.0, 0.05),
        0.0, 1.0);
    exemplars_.push_back(std::move(e));
  }
}

double Elbs::FuzzyPriority(double deadline_slack, double user_priority,
                           double processing_time) {
  // Rule base (Mamdani-style, centroid-defuzzified over three output
  // levels {low=0.2, mid=0.5, high=0.8}):
  //   tight deadline & long processing -> high priority
  //   loose deadline & short processing -> low priority
  //   otherwise -> weighted middle.
  const double tight = Tri(deadline_slack, 0.0, 0.5);
  const double loose = Tri(deadline_slack, 1.0, 0.5);
  const double longp = Tri(processing_time, 1.0, 0.5);
  const double shortp = Tri(processing_time, 0.0, 0.5);
  const double rule_high = std::min(tight, longp) * (0.5 + 0.5 * user_priority);
  const double rule_low = std::min(loose, shortp);
  const double rule_mid =
      1.0 - std::min(1.0, rule_high + rule_low);
  const double num = rule_high * 0.8 + rule_mid * 0.5 + rule_low * 0.2;
  const double den = rule_high + rule_mid + rule_low;
  return den > 0.0 ? num / den : 0.5;
}

std::vector<double> Elbs::SummarizeTopology(
    const sim::Topology& topo, const sim::SystemSnapshot& snapshot) {
  // Topology summary features: broker count fraction, mean/max cpu, mean
  // ram, LEI size imbalance, mean of the per-host fuzzy priorities.
  const double h = static_cast<double>(topo.num_nodes());
  double mean_cpu = 0.0, max_cpu = 0.0, mean_ram = 0.0, fuzzy = 0.0;
  for (std::size_t i = 0; i < snapshot.hosts.size(); ++i) {
    const auto& m = snapshot.hosts[i];
    mean_cpu += m.cpu_util;
    max_cpu = std::max(max_cpu, m.cpu_util);
    mean_ram += m.ram_util;
    fuzzy += FuzzyPriority(std::min(1.0, m.avg_deadline_s / 600.0), 0.5,
                           std::min(1.0, m.task_cpu_demand_mips / 5000.0));
  }
  mean_cpu /= h;
  mean_ram /= h;
  fuzzy /= h;
  double imbalance = 0.0;
  const auto brokers = topo.brokers();
  if (!brokers.empty()) {
    double mean_sz = static_cast<double>(topo.worker_count()) /
                     static_cast<double>(brokers.size());
    for (sim::NodeId b : brokers) {
      const double sz = static_cast<double>(topo.workers_of(b).size());
      imbalance += std::abs(sz - mean_sz);
    }
    imbalance /= h;
  }
  return {static_cast<double>(brokers.size()) / h, mean_cpu,
          std::min(2.0, max_cpu) / 2.0, mean_ram, imbalance, fuzzy};
}

double Elbs::PnnScore(const std::vector<double>& features) const {
  if (exemplars_.empty()) return 0.5;
  // Parzen-window regression over all stored exemplars — the PNN pattern
  // layer evaluates one kernel per exemplar, every call.
  double num = 0.0, den = 0.0;
  const double inv2s2 = 1.0 / (2.0 * config_.bandwidth * config_.bandwidth);
  for (const Exemplar& e : exemplars_) {
    double d2 = 0.0;
    for (std::size_t k = 0; k < features.size(); ++k) {
      const double d = features[k] - e.features[k];
      d2 += d * d;
    }
    const double w = std::exp(-d2 * inv2s2);
    num += w * e.qos_label;
    den += w;
  }
  return den > 1e-12 ? num / den : 0.5;
}

sim::Topology Elbs::Repair(const sim::Topology& current,
                           const std::vector<sim::NodeId>& failed_brokers,
                           const sim::SystemSnapshot& snapshot) {
  sim::Topology topo = current;
  std::vector<bool> alive = snapshot.alive;
  if (alive.size() != static_cast<std::size_t>(topo.num_nodes())) {
    alive.assign(static_cast<std::size_t>(topo.num_nodes()), true);
  }
  for (sim::NodeId b : failed_brokers) {
    if (static_cast<std::size_t>(b) < alive.size()) {
      alive[static_cast<std::size_t>(b)] = false;
    }
  }
  for (sim::NodeId failed : failed_brokers) {
    if (!topo.is_broker(failed)) continue;
    // Score every node-shift repair with the PNN surrogate; several
    // matchmaking rounds refine the choice (and dominate decision time).
    const auto candidates =
        core::FailureNeighbors(topo, failed, alive, core::NodeShiftOptions{});
    if (candidates.empty()) continue;
    const sim::Topology* best = &candidates.front();
    double best_score = std::numeric_limits<double>::infinity();
    for (int round = 0; round < config_.matchmaking_rounds; ++round) {
      for (const auto& cand : candidates) {
        const double score = PnnScore(SummarizeTopology(cand, snapshot));
        if (score < best_score) {
          best_score = score;
          best = &cand;
        }
      }
    }
    topo = *best;
  }
  return topo;
}

void Elbs::Observe(const sim::SystemSnapshot& snapshot) {
  // Append the observed (summary, QoS) exemplar. ELBS never forgets
  // until the hard cap — hence its memory profile.
  Exemplar e;
  e.features = SummarizeTopology(snapshot.topology, snapshot);
  const double energy_norm = snapshot.interval_energy_kwh /
                             std::max(1e-9, 16.0 * 7.3 * 300.0 / 3.6e6);
  e.qos_label = 0.5 * energy_norm + 0.5 * snapshot.slo_rate;
  exemplars_.push_back(std::move(e));
  if (exemplars_.size() > config_.max_exemplars) {
    exemplars_.erase(exemplars_.begin());
  }
}

double Elbs::MemoryFootprintMb() const {
  // The PNN pattern layer stores every training pattern as observed: the
  // full 16x13 host-feature matrix plus the derived summary and label.
  // Sized at capacity (a PNN allocates its pattern layer up front), plus
  // the fuzzy rule base — the paper's "resource intensive fuzzy neural
  // networks" that make ELBS the most memory-hungry baseline.
  const double per_exemplar = (16.0 * 13.0 + 7.0 + 1.0) * sizeof(double);
  return static_cast<double>(config_.max_exemplars) * per_exemplar /
             (1024.0 * 1024.0) +
         1.0;
}

}  // namespace carol::baselines
