// LBOS baseline (Talaat et al., "A load balancing and optimization
// strategy using reinforcement learning", JAIHC 2020) — RL, paper Table I
// row 6. Q-learning over a discretized (load level x broker count) state
// space with topology-repair actions; the reward is a weighted average of
// QoS metrics whose weights are periodically re-evolved with a small
// genetic algorithm (the paper's GA-determined weights). The Q-table
// keeps the memory footprint low — the paper's observation about LBOS —
// but the per-decision GA and weighted round-robin passes make its
// decision time the highest among the baselines.
#ifndef CAROL_BASELINES_LBOS_H_
#define CAROL_BASELINES_LBOS_H_

#include <array>
#include <vector>

#include "common/rng.h"
#include "core/resilience.h"

namespace carol::baselines {

struct LbosConfig {
  double learning_rate = 0.2;
  double discount = 0.9;
  double epsilon = 0.1;   // exploration
  int ga_population = 24;
  int ga_generations = 12;
  unsigned seed = 11;
};

class Lbos : public core::ResilienceModel {
 public:
  explicit Lbos(LbosConfig config = {});

  std::string name() const override { return "LBOS"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // Discretized state: load tercile (0-2) x broker-count bucket (0-3).
  static constexpr int kStates = 12;
  // Actions: promote-least-utilized, merge-into-coldest,
  // rebalance-one-worker, keep-structure.
  static constexpr int kActions = 4;

  int StateOf(const sim::SystemSnapshot& snapshot) const;
  const std::array<double, 3>& reward_weights() const { return weights_; }

 private:
  double& Q(int state, int action) {
    return q_table_[static_cast<std::size_t>(state * kActions + action)];
  }
  int BestAction(int state) const;
  sim::Topology ApplyAction(int action, const sim::Topology& topo,
                            const std::vector<sim::NodeId>& failed_brokers,
                            const sim::SystemSnapshot& snapshot);
  void EvolveWeights(const sim::SystemSnapshot& snapshot);

  LbosConfig config_;
  common::Rng rng_;
  std::vector<double> q_table_;
  std::array<double, 3> weights_;  // energy, slo, response
  int last_state_ = -1;
  int last_action_ = -1;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_LBOS_H_
