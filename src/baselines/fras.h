// FRAS baseline (Etemadi et al., "A cost-efficient auto-scaling mechanism
// for IoT applications in fog computing", Cluster Computing 2021) —
// surrogate model, paper Table I row 8. A fuzzy recurrent neural network
// (our LSTM cell over fuzzy-encoded system summaries) predicts next-
// interval QoS; autoscaling-style decisions pick the repair/scaling move
// whose predicted QoS is best. The surrogate's parameters are fine-tuned
// EVERY interval — the recurring cost that makes FRAS the best-overhead
// baseline yet still 36% worse than CAROL in Fig. 5(f).
#ifndef CAROL_BASELINES_FRAS_H_
#define CAROL_BASELINES_FRAS_H_

#include <deque>
#include <memory>

#include "core/resilience.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace carol::baselines {

struct FrasConfig {
  int hidden = 48;
  int window = 8;           // recurrent history length
  double learning_rate = 1e-3;
  int finetune_steps = 6;   // gradient steps per interval
  unsigned seed = 13;
};

class Fras : public core::ResilienceModel {
 public:
  explicit Fras(FrasConfig config = {});
  ~Fras() override;

  std::string name() const override { return "FRAS"; }
  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override;
  void Observe(const sim::SystemSnapshot& snapshot) override;
  double MemoryFootprintMb() const override;

  // Predicted QoS cost (lower = better) for a candidate topology given
  // the recurrent history. Exposed for the TopoMAD/StepGAN recovery
  // policy and for tests.
  double PredictQos(const sim::Topology& candidate,
                    const sim::SystemSnapshot& snapshot);

  // Shared recovery policy: scores node-shift repairs with PredictQos.
  // TopoMAD and StepGAN reuse this (paper §V: they are detection-only
  // methods supplemented with FRAS's policy).
  sim::Topology PolicyRepair(const sim::Topology& current,
                             const std::vector<sim::NodeId>& failed_brokers,
                             const sim::SystemSnapshot& snapshot);

  int finetune_invocations() const { return finetune_invocations_; }

 private:
  // Fuzzy-encoded summary of a snapshot under a candidate topology.
  static std::vector<double> FuzzyEncode(const sim::Topology& topo,
                                         const sim::SystemSnapshot& snap);
  void FineTuneStep();

  FrasConfig config_;
  common::Rng rng_;
  std::unique_ptr<nn::LstmCell> cell_;
  std::unique_ptr<nn::Dense> head_;
  std::unique_ptr<nn::Adam> optimizer_;
  // (input, observed qos) history window for per-interval fine-tuning.
  std::deque<std::pair<std::vector<double>, double>> history_;
  int finetune_invocations_ = 0;
};

}  // namespace carol::baselines

#endif  // CAROL_BASELINES_FRAS_H_
