#include "workload/gateway.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace carol::workload {

GatewayMobility::GatewayMobility(GatewayMobilityConfig config,
                                 common::Rng rng)
    : config_(config), rng_(rng) {
  if (config.num_sites <= 0) {
    throw std::invalid_argument("GatewayMobility: need at least one site");
  }
  weights_.assign(static_cast<std::size_t>(config.num_sites), 1.0);
}

void GatewayMobility::Step() {
  if (rng_.Bernoulli(config_.wave_prob)) {
    // Migration wave: a crowd converges on one site.
    ++waves_;
    const std::size_t target = rng_.Choice(weights_.size());
    const double total =
        std::accumulate(weights_.begin(), weights_.end(), 0.0);
    const double moved = total * config_.wave_mass;
    for (double& w : weights_) w *= (1.0 - config_.wave_mass);
    weights_[target] += moved;
  } else {
    // Bounded multiplicative random walk.
    for (double& w : weights_) {
      w *= std::exp(rng_.Normal(0.0, config_.drift));
      w = std::clamp(w, config_.min_weight, config_.max_weight);
    }
  }
}

int GatewayMobility::SampleSite(common::Rng& rng) const {
  return static_cast<int>(rng.WeightedChoice(weights_));
}

std::vector<double> GatewayMobility::Distribution() const {
  std::vector<double> dist = weights_;
  const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  for (double& v : dist) v /= total;
  return dist;
}

}  // namespace carol::workload
