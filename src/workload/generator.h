// Bag-of-tasks workload generator (paper §III-A and §V-A).
//
// At the start of each scheduling interval every geographic site submits
// Poisson(lambda) new tasks through its gateway, drawn from the active
// application mix. Non-stationarity — the property CAROL's confidence-
// aware fine-tuning exists to handle — comes from two mechanisms:
//   * a slow sinusoidal modulation of the arrival rate (diurnal load), and
//   * random regime shifts that redraw the per-site application mix and
//     rate phase (workload composition changes).
#ifndef CAROL_WORKLOAD_GENERATOR_H_
#define CAROL_WORKLOAD_GENERATOR_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/types.h"
#include "workload/gateway.h"
#include "workload/profiles.h"

namespace carol::workload {

struct WorkloadConfig {
  // Poisson rate per site per interval (the paper's lambda_t = 1.2).
  double lambda_per_site = 1.2;
  int num_sites = 4;
  bool non_stationary = true;
  // Sinusoidal modulation: rate *= 1 + amplitude*sin(2*pi*t/period).
  double burst_amplitude = 0.7;
  double burst_period_intervals = 40.0;
  // Probability per interval of a regime shift (phase + mix redraw).
  double regime_shift_prob = 0.03;
  // Spatial non-stationarity: route arrivals through the §IV-C gateway
  // mobility model instead of uniform site selection.
  bool gateway_mobility = false;
  GatewayMobilityConfig mobility;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(std::vector<AppProfile> apps, WorkloadConfig config,
                    common::Rng rng);

  // Creates the new tasks arriving at `now_s` (start of `interval`).
  std::vector<sim::Task> Generate(int interval, double now_s);

  // Scenario hook: per-site arrival-rate multipliers for this interval
  // (flash crowds, diurnal surges). `site_rate_multiplier` has one entry
  // per site (empty = all 1.0) and composes with the generator's own
  // non-stationary modulation; scenario drivers typically disable the
  // latter (non_stationary = false) so the compiled schedule is the only
  // source of surge. With gateway mobility, the mean multiplier scales
  // the federation-wide rate instead (arrival sites follow the mobility
  // model).
  std::vector<sim::Task> Generate(
      int interval, double now_s,
      const std::vector<double>& site_rate_multiplier);

  // Replaces the per-app SLO deadlines (relative-SLO calibration, §V-B).
  // `deadlines` must have one entry per app profile.
  void OverrideDeadlines(const std::vector<double>& deadlines);

  const std::vector<AppProfile>& apps() const { return apps_; }
  int total_generated() const { return total_generated_; }
  int regime_shifts() const { return regime_shifts_; }
  // Current gateway site distribution (uniform when mobility is off).
  std::vector<double> SiteDistribution() const;

 private:
  double RateMultiplier(int interval) const;
  void MaybeRegimeShift();
  sim::Task MakeTask(int app_index, int site, double now_s);

  std::vector<AppProfile> apps_;
  WorkloadConfig config_;
  common::Rng rng_;
  std::optional<GatewayMobility> mobility_;
  std::vector<double> mix_weights_;  // per app
  double phase_ = 0.0;
  int total_generated_ = 0;
  int regime_shifts_ = 0;
  sim::TaskId next_id_ = 1;
};

}  // namespace carol::workload

#endif  // CAROL_WORKLOAD_GENERATOR_H_
