// The execution trace Lambda = {M_t, S_t, G_t} used for offline GON
// training (paper §IV-D) and the running dataset Gamma used for
// confidence-triggered fine-tuning (Algorithm 2, line 10).
#ifndef CAROL_WORKLOAD_TRACE_H_
#define CAROL_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "sim/federation.h"

namespace carol::workload {

// One datapoint (M_t, S_t, G_t): per-host feature rows (containing both
// the performance metrics M and the per-host scheduling-decision features
// S), plus the topology assignment vector encoding G.
struct TraceRecord {
  int interval = 0;
  // broker_of(i) per node; assignment[i] == i marks a broker.
  std::vector<int> assignment;
  // One row per host, HostMetricsRow::kFeatureCount wide.
  std::vector<std::vector<double>> host_features;
  // Aggregate QoS of the interval (targets for the traditional-surrogate
  // ablation and sanity metrics for tests).
  double energy_kwh = 0.0;
  double slo_rate = 0.0;
  double avg_response_s = 0.0;
};

using Trace = std::vector<TraceRecord>;

// Builds a record from an end-of-interval snapshot.
TraceRecord MakeTraceRecord(const sim::SystemSnapshot& snapshot);

// CSV persistence (one row per host per interval plus topology columns).
void SaveTrace(const Trace& trace, const std::string& path);
Trace LoadTrace(const std::string& path);

}  // namespace carol::workload

#endif  // CAROL_WORKLOAD_TRACE_H_
