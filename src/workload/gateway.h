// Gateway mobility model (paper §IV-C, after Looga et al. "Mammoth"):
// the population of gateway devices drifts between geographic sites over
// time, skewing which LEI receives the load. This produces the
// non-stationary *spatial* load distribution that complements the
// generator's temporal non-stationarity.
//
// Model: per-site attraction weights follow a bounded multiplicative
// random walk with occasional migration waves (a crowd moving between
// sites). Tasks sample their origin site from the normalized weights.
#ifndef CAROL_WORKLOAD_GATEWAY_H_
#define CAROL_WORKLOAD_GATEWAY_H_

#include <vector>

#include "common/rng.h"

namespace carol::workload {

struct GatewayMobilityConfig {
  int num_sites = 4;
  // Per-interval multiplicative drift magnitude of site weights.
  double drift = 0.15;
  // Probability per interval of a migration wave (mass moves to one site).
  double wave_prob = 0.02;
  // Fraction of total attraction a wave concentrates on its target site.
  double wave_mass = 0.5;
  // Weights are clamped to [min_weight, max_weight] before normalizing.
  double min_weight = 0.05;
  double max_weight = 8.0;
};

class GatewayMobility {
 public:
  GatewayMobility(GatewayMobilityConfig config, common::Rng rng);

  // Advances the mobility state by one scheduling interval.
  void Step();

  // Samples the origin site of one task.
  int SampleSite(common::Rng& rng) const;

  // Current normalized site distribution.
  std::vector<double> Distribution() const;

  int waves() const { return waves_; }

 private:
  GatewayMobilityConfig config_;
  common::Rng rng_;
  std::vector<double> weights_;
  int waves_ = 0;
};

}  // namespace carol::workload

#endif  // CAROL_WORKLOAD_GATEWAY_H_
