#include "workload/profiles.h"

namespace carol::workload {

std::vector<AppProfile> DeFogProfiles() {
  // Yolo: object detection — CPU and memory heavy with large image I/O.
  AppProfile yolo{.name = "yolo",
                  .mi_min = 180e3,
                  .mi_max = 300e3,
                  .mips_demand = 1250.0,
                  .ram_min_mb = 800.0,
                  .ram_max_mb = 1100.0,
                  .disk_mbps = 8.0,
                  .net_mbps = 4.0,
                  .input_mb = 60.0,
                  .output_mb = 2.0,
                  .deadline_s = 420.0};
  // PocketSphinx: speech-to-text — CPU bound, moderate memory.
  AppProfile sphinx{.name = "pocketsphinx",
                    .mi_min = 100e3,
                    .mi_max = 180e3,
                    .mips_demand = 1100.0,
                    .ram_min_mb = 250.0,
                    .ram_max_mb = 400.0,
                    .disk_mbps = 4.0,
                    .net_mbps = 2.0,
                    .input_mb = 25.0,
                    .output_mb = 0.5,
                    .deadline_s = 300.0};
  // Aeneas: forced audio/text alignment — disk-heavy.
  AppProfile aeneas{.name = "aeneas",
                    .mi_min = 60e3,
                    .mi_max = 130e3,
                    .mips_demand = 950.0,
                    .ram_min_mb = 200.0,
                    .ram_max_mb = 350.0,
                    .disk_mbps = 25.0,
                    .net_mbps = 2.0,
                    .input_mb = 35.0,
                    .output_mb = 1.0,
                    .deadline_s = 260.0};
  return {yolo, sphinx, aeneas};
}

std::vector<AppProfile> AIoTBenchProfiles() {
  // Work scales follow the networks' relative FLOPs per image (ResNet18
  // ~1.8G, ResNet34 ~3.6G, ResNeXt32x4d ~4.2G, SqueezeNet ~0.35G,
  // GoogLeNet ~1.5G, MobileNetV2 ~0.3G, MnasNet ~0.33G) applied to COCO
  // image batches; memory follows parameter+activation footprints.
  auto make = [](std::string name, double mi_lo, double mi_hi,
                 double ram_lo, double ram_hi, double deadline) {
    AppProfile p;
    p.name = std::move(name);
    p.mi_min = mi_lo;
    p.mi_max = mi_hi;
    p.mips_demand = 1200.0;
    p.ram_min_mb = ram_lo;
    p.ram_max_mb = ram_hi;
    p.disk_mbps = 6.0;
    p.net_mbps = 3.0;
    p.input_mb = 40.0;
    p.output_mb = 1.0;
    p.deadline_s = deadline;
    return p;
  };
  return {
      make("resnet18", 150e3, 230e3, 650.0, 850.0, 380.0),
      make("resnet34", 260e3, 380e3, 850.0, 1100.0, 520.0),
      make("resnext32x4d", 300e3, 440e3, 1000.0, 1300.0, 580.0),
      make("squeezenet", 40e3, 75e3, 220.0, 320.0, 150.0),
      make("googlenet", 120e3, 190e3, 450.0, 600.0, 320.0),
      make("mobilenetv2", 35e3, 65e3, 260.0, 360.0, 140.0),
      make("mnasnet", 38e3, 70e3, 280.0, 380.0, 145.0),
  };
}

}  // namespace carol::workload
