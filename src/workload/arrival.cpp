#include "workload/arrival.h"

#include <stdexcept>
#include <utility>

namespace carol::workload {

ArrivalConfig ArrivalConfig::FromUsers(double users,
                                       double tasks_per_user_per_day,
                                       int num_sites) {
  ArrivalConfig cfg;
  cfg.rate_per_second = users * tasks_per_user_per_day / 86400.0;
  cfg.num_sites = num_sites;
  return cfg;
}

ArrivalProcess::ArrivalProcess(std::vector<AppProfile> apps,
                               ArrivalConfig config, common::Rng rng)
    : apps_(std::move(apps)), config_(config), rng_(rng) {
  if (apps_.empty()) {
    throw std::invalid_argument("ArrivalProcess: no app profiles");
  }
  if (config_.rate_per_second <= 0.0) {
    throw std::invalid_argument("ArrivalProcess: rate must be positive");
  }
  if (config_.num_sites <= 0) {
    throw std::invalid_argument("ArrivalProcess: need at least one site");
  }
  mix_weights_.assign(apps_.size(), 1.0);
}

// Mirror of WorkloadGenerator::MakeTask's attribute draws (same order,
// same distributions) so the two task populations are interchangeable.
sim::Task ArrivalProcess::MakeTask(int app_index, int site, double now_s) {
  const AppProfile& app = apps_[static_cast<std::size_t>(app_index)];
  sim::Task task;
  task.id = next_id_++;
  task.app_type = app_index;
  task.app_name = app.name;
  task.total_mi = rng_.Uniform(app.mi_min, app.mi_max);
  task.remaining_mi = task.total_mi;
  task.mips_demand = app.mips_demand * rng_.Uniform(0.9, 1.1);
  task.ram_mb = rng_.Uniform(app.ram_min_mb, app.ram_max_mb);
  task.disk_mbps = app.disk_mbps;
  task.net_mbps = app.net_mbps;
  task.input_mb = app.input_mb;
  task.output_mb = app.output_mb;
  task.slo_deadline_s = app.deadline_s;
  task.arrival_time_s = now_s;
  task.gateway_site = site;
  return task;
}

std::vector<sim::Task> ArrivalProcess::Drain(double until_s) {
  std::vector<sim::Task> out;
  for (;;) {
    // Per-event draw order is fixed (gap, then — only when the event is
    // actually emitted — site, app, attributes). A Drain boundary can
    // interrupt the stream only between events, never inside one, and
    // the pending gap survives in next_time_; that is the whole
    // chunk-invariance argument.
    if (!pending_) {
      next_time_ += rng_.Exponential(config_.rate_per_second);
      pending_ = true;
    }
    if (next_time_ >= until_s) break;
    const int site = static_cast<int>(
        rng_.Choice(static_cast<std::size_t>(config_.num_sites)));
    const int app = static_cast<int>(rng_.WeightedChoice(mix_weights_));
    out.push_back(MakeTask(app, site, next_time_));
    pending_ = false;
  }
  total_generated_ += static_cast<int>(out.size());
  return out;
}

}  // namespace carol::workload
