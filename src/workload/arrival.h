// Open-loop arrival process for large-fleet simulation (simkern tier).
//
// WorkloadGenerator draws a per-interval Poisson COUNT per site, which
// ties the stream to the interval grid: the same seed produces different
// tasks under a different chunking. ArrivalProcess instead models the
// continuous-time Poisson process itself — exponential inter-arrival
// gaps, each event's attribute draws made only when the event is
// emitted — so the generated event stream is a function of (seed, rate)
// alone. Draining to t=600 in one call, or in ten calls of 60, yields
// bit-identical tasks (pinned by tests/simkern_test.cpp).
//
// "One million users" is a rate parameter here, not a data structure:
// FromUsers folds a population size into events per second, and the
// process's state stays O(1) regardless of how large the population or
// how long the horizon.
#ifndef CAROL_WORKLOAD_ARRIVAL_H_
#define CAROL_WORKLOAD_ARRIVAL_H_

#include <vector>

#include "common/rng.h"
#include "sim/types.h"
#include "workload/profiles.h"

namespace carol::workload {

struct ArrivalConfig {
  // Federation-wide arrival rate, events per simulated second.
  double rate_per_second = 0.01;
  // Arrival site of each event is uniform over [0, num_sites).
  int num_sites = 4;

  // Population framing: `users` devices each submitting
  // `tasks_per_user_per_day` inference requests on average.
  // FromUsers(1e6, 1.0, 64) ~= 11.6 events/s federation-wide.
  static ArrivalConfig FromUsers(double users, double tasks_per_user_per_day,
                                 int num_sites);
};

class ArrivalProcess {
 public:
  ArrivalProcess(std::vector<AppProfile> apps, ArrivalConfig config,
                 common::Rng rng);

  // Emits every event with arrival time < until_s since the last call,
  // in arrival order. Cumulative and chunk-invariant: any ascending
  // sequence of Drain() calls partitions the same underlying stream.
  std::vector<sim::Task> Drain(double until_s);

  const std::vector<AppProfile>& apps() const { return apps_; }
  int total_generated() const { return total_generated_; }

 private:
  sim::Task MakeTask(int app_index, int site, double now_s);

  std::vector<AppProfile> apps_;
  ArrivalConfig config_;
  common::Rng rng_;
  std::vector<double> mix_weights_;  // per app, uniform
  double next_time_ = 0.0;           // pending event's arrival time
  bool pending_ = false;             // gap drawn, attributes not yet
  int total_generated_ = 0;
  sim::TaskId next_id_ = 1;
};

}  // namespace carol::workload

#endif  // CAROL_WORKLOAD_ARRIVAL_H_
