#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace carol::workload {

WorkloadGenerator::WorkloadGenerator(std::vector<AppProfile> apps,
                                     WorkloadConfig config, common::Rng rng)
    : apps_(std::move(apps)), config_(config), rng_(rng) {
  if (apps_.empty()) {
    throw std::invalid_argument("WorkloadGenerator: no app profiles");
  }
  mix_weights_.assign(apps_.size(), 1.0);
  if (config_.gateway_mobility) {
    GatewayMobilityConfig mcfg = config_.mobility;
    mcfg.num_sites = config_.num_sites;
    mobility_.emplace(mcfg, rng_.Fork());
  }
}

std::vector<double> WorkloadGenerator::SiteDistribution() const {
  if (mobility_.has_value()) return mobility_->Distribution();
  return std::vector<double>(static_cast<std::size_t>(config_.num_sites),
                             1.0 / config_.num_sites);
}

double WorkloadGenerator::RateMultiplier(int interval) const {
  if (!config_.non_stationary) return 1.0;
  const double angle = 2.0 * std::numbers::pi *
                       (static_cast<double>(interval) + phase_) /
                       config_.burst_period_intervals;
  const double mult = 1.0 + config_.burst_amplitude * std::sin(angle);
  return std::max(0.1, mult);
}

void WorkloadGenerator::MaybeRegimeShift() {
  if (!config_.non_stationary) return;
  if (!rng_.Bernoulli(config_.regime_shift_prob)) return;
  ++regime_shifts_;
  phase_ = rng_.Uniform(0.0, config_.burst_period_intervals);
  // Redraw the application mix (normalized exponential draws give a
  // Dirichlet(1) sample): some regimes are light-CNN heavy, others are
  // dominated by the large networks.
  for (double& w : mix_weights_) w = rng_.Exponential(1.0) + 0.05;
}

sim::Task WorkloadGenerator::MakeTask(int app_index, int site,
                                      double now_s) {
  const AppProfile& app = apps_[static_cast<std::size_t>(app_index)];
  sim::Task task;
  task.id = next_id_++;
  task.app_type = app_index;
  task.app_name = app.name;
  task.total_mi = rng_.Uniform(app.mi_min, app.mi_max);
  task.remaining_mi = task.total_mi;
  task.mips_demand = app.mips_demand * rng_.Uniform(0.9, 1.1);
  task.ram_mb = rng_.Uniform(app.ram_min_mb, app.ram_max_mb);
  task.disk_mbps = app.disk_mbps;
  task.net_mbps = app.net_mbps;
  task.input_mb = app.input_mb;
  task.output_mb = app.output_mb;
  task.slo_deadline_s = app.deadline_s;
  task.arrival_time_s = now_s;
  task.gateway_site = site;
  return task;
}

std::vector<sim::Task> WorkloadGenerator::Generate(int interval,
                                                   double now_s) {
  return Generate(interval, now_s, {});
}

std::vector<sim::Task> WorkloadGenerator::Generate(
    int interval, double now_s,
    const std::vector<double>& site_rate_multiplier) {
  const auto site_mult = [&](int site) {
    const auto s = static_cast<std::size_t>(site);
    return s < site_rate_multiplier.size() ? site_rate_multiplier[s] : 1.0;
  };
  MaybeRegimeShift();
  if (mobility_.has_value()) mobility_->Step();
  const double rate = config_.lambda_per_site * RateMultiplier(interval);
  std::vector<sim::Task> tasks;
  if (mobility_.has_value()) {
    // With mobility, the federation-wide rate is fixed but its spatial
    // distribution follows the drifting gateway population; a surge
    // scales the total rate by the mean site multiplier.
    double mean_mult = 0.0;
    for (int site = 0; site < config_.num_sites; ++site) {
      mean_mult += site_mult(site);
    }
    mean_mult /= std::max(1, config_.num_sites);
    const int n = rng_.Poisson(rate * config_.num_sites * mean_mult);
    for (int i = 0; i < n; ++i) {
      const int app = static_cast<int>(rng_.WeightedChoice(mix_weights_));
      tasks.push_back(MakeTask(app, mobility_->SampleSite(rng_), now_s));
    }
  } else {
    for (int site = 0; site < config_.num_sites; ++site) {
      const int n = rng_.Poisson(rate * site_mult(site));
      for (int i = 0; i < n; ++i) {
        const int app =
            static_cast<int>(rng_.WeightedChoice(mix_weights_));
        tasks.push_back(MakeTask(app, site, now_s));
      }
    }
  }
  total_generated_ += static_cast<int>(tasks.size());
  return tasks;
}

void WorkloadGenerator::OverrideDeadlines(
    const std::vector<double>& deadlines) {
  if (deadlines.size() != apps_.size()) {
    throw std::invalid_argument(
        "OverrideDeadlines: need one deadline per app");
  }
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    apps_[i].deadline_s = deadlines[i];
  }
}

}  // namespace carol::workload
