// Application profiles replacing the paper's benchmark binaries.
//
// Offline training traces use DeFog (Yolo, PocketSphinx, Aeneas — §IV-D);
// test-time workloads use AIoTBench's seven CNN applications (§V-A):
// ResNet18, ResNet34, ResNeXt32x4d (heavy) and SqueezeNet, GoogLeNet,
// MobileNetV2, MnasNet (light). Resource envelopes are scaled from the
// applications' published compute/memory footprints onto the simulator's
// Raspberry-Pi-class MIPS scale; what matters for the evaluation is the
// heterogeneity and contention they induce, not the binaries themselves
// (see DESIGN.md, Substitutions).
#ifndef CAROL_WORKLOAD_PROFILES_H_
#define CAROL_WORKLOAD_PROFILES_H_

#include <string>
#include <vector>

namespace carol::workload {

struct AppProfile {
  std::string name;
  // Total work per task, sampled uniformly from [mi_min, mi_max].
  double mi_min = 0.0;
  double mi_max = 0.0;
  // Preferred processing rate (one container ~ one Pi core's MIPS share).
  double mips_demand = 1000.0;
  // Resident memory, sampled uniformly from [ram_min_mb, ram_max_mb].
  double ram_min_mb = 0.0;
  double ram_max_mb = 0.0;
  double disk_mbps = 0.0;
  double net_mbps = 0.0;
  double input_mb = 0.0;
  double output_mb = 0.0;
  // Default absolute SLO deadline; bench harnesses override this with the
  // paper's relative SLO (90th percentile of StepGAN's response, §V-B).
  double deadline_s = 300.0;
};

// DeFog benchmark suite subset used for the offline GON training trace.
std::vector<AppProfile> DeFogProfiles();

// AIoTBench CNN suite used at test time.
std::vector<AppProfile> AIoTBenchProfiles();

}  // namespace carol::workload

#endif  // CAROL_WORKLOAD_PROFILES_H_
