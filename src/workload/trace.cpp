#include "workload/trace.h"

#include <stdexcept>

#include "common/csv.h"

namespace carol::workload {

TraceRecord MakeTraceRecord(const sim::SystemSnapshot& snapshot) {
  TraceRecord rec;
  rec.interval = snapshot.interval;
  const int h = snapshot.topology.num_nodes();
  rec.assignment.reserve(static_cast<std::size_t>(h));
  for (sim::NodeId n = 0; n < h; ++n) {
    rec.assignment.push_back(snapshot.topology.broker_of(n));
  }
  rec.host_features.reserve(snapshot.hosts.size());
  for (const auto& row : snapshot.hosts) {
    rec.host_features.push_back(row.Features());
  }
  rec.energy_kwh = snapshot.interval_energy_kwh;
  rec.slo_rate = snapshot.slo_rate;
  rec.avg_response_s = snapshot.avg_response_s;
  return rec;
}

void SaveTrace(const Trace& trace, const std::string& path) {
  std::vector<std::string> header = {"interval", "host", "broker_of",
                                     "energy_kwh", "slo_rate",
                                     "avg_response_s"};
  const int f = sim::HostMetricsRow::kFeatureCount;
  for (int i = 0; i < f; ++i) header.push_back("f" + std::to_string(i));
  common::CsvWriter writer(path, header);
  for (const TraceRecord& rec : trace) {
    for (std::size_t h = 0; h < rec.host_features.size(); ++h) {
      std::vector<double> row = {static_cast<double>(rec.interval),
                                 static_cast<double>(h),
                                 static_cast<double>(rec.assignment[h]),
                                 rec.energy_kwh, rec.slo_rate,
                                 rec.avg_response_s};
      row.insert(row.end(), rec.host_features[h].begin(),
                 rec.host_features[h].end());
      writer.WriteRow(row);
    }
  }
}

Trace LoadTrace(const std::string& path) {
  const common::CsvTable table = common::ReadCsv(path);
  Trace trace;
  const int f = sim::HostMetricsRow::kFeatureCount;
  for (const auto& row : table.rows) {
    if (row.size() != 6 + static_cast<std::size_t>(f)) {
      throw std::runtime_error("LoadTrace: bad row width");
    }
    const int interval = static_cast<int>(row[0]);
    if (trace.empty() || trace.back().interval != interval) {
      TraceRecord rec;
      rec.interval = interval;
      rec.energy_kwh = row[3];
      rec.slo_rate = row[4];
      rec.avg_response_s = row[5];
      trace.push_back(std::move(rec));
    }
    TraceRecord& rec = trace.back();
    rec.assignment.push_back(static_cast<int>(row[2]));
    rec.host_features.emplace_back(row.begin() + 6, row.end());
  }
  return trace;
}

}  // namespace carol::workload
