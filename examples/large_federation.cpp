// Scenario: LARGE federations — two 64-host edge federations (16 LEIs
// each, tiled Raspberry-Pi sites from sim::ScaledTestbedSpecs) served
// concurrently by one ResilienceService with per-replica attention
// threading.
//
// What this demonstrates (and what CI smoke-checks):
//   * the repair hot path scales to H >= 64: the O(H^2) per-state GAT
//     attention fans out across a per-replica worker pool
//     (ServiceConfig::attention_threads) while decisions stay
//     bit-identical to the sequential path;
//   * tabu candidate filtering uses the incremental Topology::Hash —
//     no per-candidate O(H) rehash anywhere in the search;
//   * the final per-decision confidence calls stack into the same flush
//     passes as the frontier scoring (confidence_jobs vs
//     confidence_passes below);
//   * admission control: the request queue is bounded
//     (ServiceConfig::max_pending_requests), overflow is rejected with
//     a typed ServiceOverloadedError instead of unbounded growth.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/runtime.h"
#include "harness/serve_experiment.h"
#include "serve/service.h"

int main() {
  using namespace carol;
  std::printf("== large federations: two 64-host fleets, one service, "
              "threaded attention ==\n\n");

  // Trimmed surrogate + search budgets: H=64 repairs score frontiers of
  // ~60 candidates per tabu round, each candidate a 64x9 generation.
  core::CarolConfig base;
  base.gon.hidden_width = 32;
  base.gon.num_layers = 2;
  base.gon.gat_width = 16;
  base.gon.generation_steps = 5;
  base.tabu.max_iterations = 3;
  base.tabu.max_evaluations = 48;
  base.policy = core::FineTunePolicy::kNever;  // steady-state serving

  serve::ServiceConfig service_cfg;
  service_cfg.gon = base.gon;
  service_cfg.num_workers = 2;
  // Per-replica attention threading: each worker's GON fans the
  // per-state attention of its stacked passes across 2 threads
  // (2 workers x 2 threads sizes the product to a 4-core box).
  service_cfg.attention_threads = 2;
  // Backpressure: never hold more than 64 admitted repairs.
  service_cfg.max_pending_requests = 64;
  serve::ResilienceService service(service_cfg);

  const int kFleets = 2;
  std::vector<serve::FederationSpec> specs;
  std::vector<harness::RunConfig> configs;
  for (int i = 0; i < kFleets; ++i) {
    serve::FederationSpec spec;
    spec.name = "large-fed-" + std::to_string(i);
    spec.carol = base;
    spec.carol.seed = 300 + static_cast<unsigned>(i);
    specs.push_back(spec);

    harness::RunConfig cfg;
    cfg.intervals = 8;
    cfg.seed = 50 + static_cast<unsigned>(i);
    cfg.num_nodes = 64;   // sim::ScaledTestbedSpecs tiles 16 sites
    cfg.num_brokers = 16;
    // Workload AND network must agree on the site count (tasks gateway
    // in from a site; the network maps nodes to sites contiguously).
    cfg.workload.num_sites = 16;
    cfg.sim.network.num_sites = 16;
    cfg.workload.lambda_per_site = 1.2;
    // More attack pressure than the 16-host default: with 16 brokers a
    // 0.5/interval rate would rarely exercise the H=64 repair search
    // this example exists to smoke-test.
    cfg.faults.lambda_per_interval = 2.0;
    configs.push_back(cfg);
  }

  const harness::ServiceRunReport report =
      harness::RunFederationsViaServiceReport(service, specs, configs);

  std::printf("%-14s %-8s %-12s %-12s %-10s %-12s\n", "federation",
              "hosts", "energy(kWh)", "response(s)", "slo_rate",
              "decision(s)");
  bool ok = true;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const harness::RunResult& r = report.results[i];
    std::printf("%-14s %-8d %-12.4f %-12.1f %-10.4f %-12.4f\n",
                specs[i].name.c_str(), 64, r.total_energy_kwh,
                r.avg_response_s, r.slo_violation_rate,
                r.avg_decision_time_s);
    if (r.total_tasks <= 0 || r.avg_decision_time_s < 0.0) ok = false;
  }

  const serve::ServiceStats stats = service.stats();
  std::printf("\nservice totals: %llu repairs, %llu observes\n",
              static_cast<unsigned long long>(stats.repairs),
              static_cast<unsigned long long>(stats.observes));
  std::printf("frontier stacking: %llu jobs / %llu passes (%llu states)\n",
              static_cast<unsigned long long>(stats.pipeline_jobs),
              static_cast<unsigned long long>(stats.pipeline_passes),
              static_cast<unsigned long long>(stats.pipeline_states));
  std::printf("confidence stacking: %llu decisions / %llu passes "
              "(every decision scored through a stacked flush, no lone "
              "kernel calls)\n",
              static_cast<unsigned long long>(stats.confidence_jobs),
              static_cast<unsigned long long>(stats.confidence_passes));

  if (stats.repairs == 0 || stats.confidence_jobs != stats.repairs) {
    std::printf("\nFAIL: confidence stacking accounting is off\n");
    return 1;
  }
  if (!ok) {
    std::printf("\nFAIL: a fleet produced no work or negative latency\n");
    return 1;
  }
  std::printf("\nexpected: both 64-host fleets finish with valid "
              "topologies and bounded decision latency; decisions are "
              "bit-identical to the unthreaded path (attention threading "
              "partitions work, never arithmetic).\n");
  return 0;
}
