// Scenario: a broker-failure storm — a burst of coordinated DDOS/CPU
// attacks takes down brokers far faster than the nominal lambda_f = 0.5
// (think a targeted attack on the management layer). Compares how CAROL
// and the DYVERSE heuristic keep the federation alive through the storm,
// interval by interval.
//
// This is the motivating scenario of the paper's introduction: when a
// broker fails, every worker in its LEI is orphaned, so broker resilience
// dominates end-to-end QoS.
#include <cstdio>

#include "baselines/dyverse.h"
#include "core/carol.h"
#include "harness/runtime.h"

namespace {

carol::harness::RunConfig StormConfig() {
  carol::harness::RunConfig cfg;
  cfg.intervals = 30;
  cfg.seed = 21;
  // The storm: four attacks per interval, almost always on brokers,
  // almost always escalating to byzantine hangs.
  cfg.faults.lambda_per_interval = 4.0;
  cfg.faults.broker_target_prob = 0.95;
  cfg.faults.escalation_prob = 0.95;
  cfg.faults.reboot_min_s = 120.0;
  cfg.faults.reboot_max_s = 300.0;
  return cfg;
}

void Report(const char* name, const carol::harness::RunResult& r) {
  std::printf(
      "%-10s completed %4d/%4d  energy %.4f kWh  response %6.1f s  "
      "SLO violations %5.1f%%  failures detected %d\n",
      name, r.completed, r.total_tasks, r.total_energy_kwh,
      r.avg_response_s, 100.0 * r.slo_violation_rate,
      r.broker_failures_detected);
}

}  // namespace

int main() {
  using namespace carol;
  std::printf("== broker failure storm: CAROL vs DYVERSE ==\n");
  std::printf(
      "attack rate 4.0/interval, 95%% broker-targeted, 95%% escalation\n\n");

  // Offline-train CAROL first (it would be deployed pre-trained).
  harness::RunConfig trace_cfg;
  trace_cfg.intervals = 80;
  trace_cfg.seed = 7;
  const workload::Trace trace = harness::CollectTrainingTrace(trace_cfg, 10);
  core::CarolModel carol_model((core::CarolConfig()));
  carol_model.TrainOffline(trace, 10);

  baselines::Dyverse dyverse;

  const harness::RunResult carol_result =
      harness::FederationRuntime(StormConfig()).Run(carol_model);
  const harness::RunResult dyverse_result =
      harness::FederationRuntime(StormConfig()).Run(dyverse);

  Report("CAROL", carol_result);
  Report("DYVERSE", dyverse_result);

  std::printf(
      "\nper-interval SLO violation rate (storm progression):\n"
      "interval   CAROL   DYVERSE\n");
  for (std::size_t i = 0; i < carol_result.interval_slo_rate.size(); ++i) {
    std::printf("%8zu   %5.2f   %7.2f\n", i,
                carol_result.interval_slo_rate[i],
                dyverse_result.interval_slo_rate[i]);
  }

  const double gain =
      dyverse_result.slo_violation_rate > 0
          ? 100.0 *
                (dyverse_result.slo_violation_rate -
                 carol_result.slo_violation_rate) /
                dyverse_result.slo_violation_rate
          : 0.0;
  std::printf("\nCAROL reduced SLO violations by %.1f%% vs DYVERSE under "
              "the storm.\n",
              gain);
  return 0;
}
