// Scenario: declarative resilience testing — compile a failure scenario
// once, play it against live service sessions, read the scorecard.
//
// Demonstrates the scenario engine's properties:
//   * a ScenarioSpec composes timed phases (here: a spatially-targeted
//     fault storm followed by a site partition that heals);
//   * compilation materializes every stochastic choice up front, so the
//     same spec + seed replays bit-identically — including across
//     different service worker counts;
//   * the Scorecard separates deterministic resilience metrics
//     (recovery distribution, SLO, gate accuracy — fingerprinted) from
//     wall-clock serving metrics (latency, stacking).
#include <cstdio>

#include "harness/runtime.h"
#include "scenario/driver.h"
#include "scenario/library.h"
#include "serve/service.h"

int main() {
  using namespace carol;
  std::printf("== scenario playbook: storm + partition through one "
              "service ==\n\n");

  serve::ServiceConfig service_cfg;
  service_cfg.gon.hidden_width = 32;
  service_cfg.gon.num_layers = 2;
  service_cfg.gon.gat_width = 16;
  service_cfg.gon.generation_steps = 5;
  service_cfg.num_workers = 2;
  serve::ResilienceService service(service_cfg);

  harness::RunConfig trace_cfg;
  trace_cfg.intervals = 20;
  trace_cfg.seed = 7;
  service.TrainOffline(harness::CollectTrainingTrace(trace_cfg, 10), 3);

  // A custom two-phase scenario assembled inline (the built-in library
  // covers the common shapes; see scenario::BuiltinScenarios).
  scenario::ScenarioSpec spec;
  spec.name = "storm-then-partition";
  spec.seed = 2026;
  spec.intervals = 16;
  scenario::ScenarioPhase storm;
  storm.kind = scenario::PhaseKind::kFaultStorm;
  storm.start = 2;
  storm.duration = 4;
  storm.site = 0;
  storm.intensity = 2.0;
  spec.phases.push_back(storm);
  scenario::ScenarioPhase cut;
  cut.kind = scenario::PhaseKind::kPartition;
  cut.start = 8;
  cut.duration = 4;
  cut.site = 1;
  spec.phases.push_back(cut);

  core::CarolConfig session;
  session.tabu.max_iterations = 3;
  session.tabu.max_evaluations = 40;
  scenario::ScenarioDriver driver(service, {session});

  const scenario::Scorecard first = driver.Run(spec);
  const scenario::Scorecard second = driver.Run(spec);  // same seed

  std::printf("%-22s %12s %12s\n", "metric", "run 1", "run 2");
  std::printf("%-22s %12d %12d\n", "completed tasks", first.completed,
              second.completed);
  std::printf("%-22s %12.4f %12.4f\n", "slo violation rate",
              first.slo_violation_rate, second.slo_violation_rate);
  std::printf("%-22s %12.4f %12.4f\n", "energy (kWh)",
              first.total_energy_kwh, second.total_energy_kwh);
  std::printf("%-22s %12.1f %12.1f\n", "mean recovery (s)",
              first.recovery_mean_s, second.recovery_mean_s);
  std::printf("%-22s %12.3f %12.3f\n", "gate accuracy",
              first.gate_accuracy, second.gate_accuracy);
  std::printf("%-22s %12s %12s\n", "fingerprint",
              first.FingerprintHex().c_str(),
              second.FingerprintHex().c_str());
  std::printf("%-22s %12.2f %12.2f   (wall-clock: may differ)\n",
              "decisions/sec", first.decisions_per_sec,
              second.decisions_per_sec);

  if (first.DeterministicFingerprint() !=
      second.DeterministicFingerprint()) {
    std::printf("\nERROR: replay diverged — determinism broken\n");
    return 1;
  }
  std::printf("\nexpected: both runs report the SAME fingerprint (the "
              "deterministic section replays bit-identically); only the "
              "wall-clock serving metrics differ.\n");
  return 0;
}
