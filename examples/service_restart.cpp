// Crash-safe serving demo: a resilience service is interrupted MID-REPAIR,
// snapshotted, torn down, and restored into a brand-new service object —
// and still produces the bit-exact decision of an uninterrupted run.
//
//   1. Run an uninterrupted reference repair on a throwaway service.
//   2. Start the same repair on a second service; while the tabu search
//      is mid-flight, BeginDrain() parks the job (the client gets the
//      typed ServiceSuspendedError) and SaveSnapshot() captures
//      everything: master weights, session rng streams, POT state and
//      the parked search.
//   3. Restore a fresh service from the snapshot ("new process"),
//      re-issue the suspended request, and verify topology + confidence
//      match the reference exactly.
//
// Build & run:  cmake --build build && ./build/service_restart
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "core/carol.h"
#include "serve/service.h"
#include "sim/federation.h"

namespace {

carol::sim::SystemSnapshot FailingSnapshot(int hosts, int brokers) {
  using namespace carol;
  sim::SystemSnapshot snap;
  snap.topology = sim::Topology::Initial(hosts, brokers);
  snap.hosts.resize(static_cast<std::size_t>(hosts));
  snap.alive.assign(static_cast<std::size_t>(hosts), true);
  for (int i = 0; i < hosts; ++i) {
    auto& m = snap.hosts[static_cast<std::size_t>(i)];
    m.cpu_util = 0.55;
    m.ram_util = 0.45;
    m.is_broker = snap.topology.is_broker(i);
  }
  snap.alive[0] = false;
  snap.hosts[0].failed = true;
  return snap;
}

}  // namespace

int main() {
  using namespace carol;

  std::printf("== CAROL service restart drill ==\n");

  serve::ServiceConfig cfg;
  cfg.gon.hidden_width = 16;
  cfg.gon.num_layers = 2;
  cfg.gon.gat_width = 8;
  cfg.gon.generation_steps = 3;
  cfg.num_workers = 1;

  serve::FederationSpec spec;
  spec.name = "drill";
  spec.carol.gon = cfg.gon;
  spec.carol.policy = core::FineTunePolicy::kNever;
  // A deep search: the repair runs long enough to be caught mid-flight.
  spec.carol.tabu.max_iterations = 30;
  spec.carol.tabu.max_evaluations = 2000;

  serve::RepairRequest request;
  const sim::SystemSnapshot snap = FailingSnapshot(64, 16);
  request.current = snap.topology;
  request.failed_brokers = {0};
  request.snapshot = snap;

  // 1. Uninterrupted reference.
  std::printf("[1/3] reference repair (uninterrupted)...\n");
  serve::RepairResponse want;
  {
    serve::ResilienceService reference(cfg);
    const serve::SessionId id = reference.OpenSession(spec);
    want = reference.Repair(id, request);
  }

  // 2. Same repair, interrupted mid-search by drain + snapshot.
  std::printf("[2/3] repair interrupted mid-search, snapshotting...\n");
  std::stringstream image(std::ios::in | std::ios::out | std::ios::binary);
  serve::SessionId session = 0;
  {
    serve::ResilienceService service(cfg);
    session = service.OpenSession(spec);
    std::atomic<bool> suspended{false};
    std::thread client([&] {
      try {
        service.Repair(session, request);
      } catch (const serve::ServiceSuspendedError&) {
        suspended.store(true);
      }
    });
    while (service.stats().pipeline_passes < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.BeginDrain();
    client.join();
    service.WaitDrained();
    service.SaveSnapshot(image);
    if (!suspended.load()) {
      std::printf("ERROR: client was not suspended\n");
      return 1;
    }
    std::printf("      parked mid-repair, snapshot is %zu bytes\n",
                image.str().size());
  }  // the old service object is destroyed here — the "crash"

  // 3. Restore into a fresh service and resume the suspended request.
  std::printf("[3/3] restoring and resuming...\n");
  image.seekg(0);
  serve::ResilienceService restored(cfg, image);
  const serve::RepairResponse got = restored.Repair(session, request);

  const bool topo_match = got.topology == want.topology;
  const bool conf_match = got.confidence == want.confidence;
  std::printf("\n-- verdict --------------------------------------------\n");
  std::printf("restored topology matches reference  : %s\n",
              topo_match ? "yes (bit-exact)" : "NO");
  std::printf("restored confidence matches reference: %s (%.12f)\n",
              conf_match ? "yes (bit-exact)" : "NO", got.confidence);
  if (!topo_match || !conf_match) {
    std::printf("RESTART DRILL FAILED\n");
    return 1;
  }
  std::printf("restart drill passed: the crash was invisible.\n");
  return 0;
}
