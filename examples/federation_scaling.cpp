// Scenario: federation scaling — how does CAROL behave as the edge
// federation grows from 8 to 32 nodes, and as the diurnal workload swings
// between idle and bursty? Ported to the session-based serving API: one
// ResilienceService hosts every run as a session over shared GON worker
// replicas.
//
// Demonstrates two library properties:
//   * the GON discriminator is host-count agnostic (GAT branch), so the
//     SAME trained surrogate serves sessions of every federation size;
//   * the node-shift repair keeps topologies valid at every scale.
#include <cstdio>

#include "harness/runtime.h"
#include "serve/service.h"

int main() {
  using namespace carol;
  std::printf("== federation scaling: one served surrogate, three fleet "
              "sizes ==\n\n");

  // Train the shared surrogate once on the default 16-node fleet.
  harness::RunConfig trace_cfg;
  trace_cfg.intervals = 80;
  trace_cfg.seed = 7;
  const workload::Trace trace =
      harness::CollectTrainingTrace(trace_cfg, 10);

  serve::ServiceConfig service_cfg;
  service_cfg.num_workers = 2;
  serve::ResilienceService service(service_cfg);
  service.TrainOffline(trace, 10);

  std::printf("%-8s %-9s %-12s %-12s %-10s %-12s\n", "nodes", "brokers",
              "energy(kWh)", "response(s)", "slo_rate", "decision(s)");
  for (const auto& [nodes, brokers] : {std::pair{8, 2}, std::pair{16, 4},
                                       std::pair{32, 8}}) {
    harness::RunConfig cfg;
    cfg.intervals = 25;
    cfg.seed = 33;
    cfg.num_nodes = nodes;
    cfg.num_brokers = brokers;
    // Arrival rate scales with fleet size (more gateways).
    cfg.workload.lambda_per_site = 1.2 * nodes / 16.0;
    serve::FederationSpec spec;
    spec.name = "scaling-" + std::to_string(nodes);
    serve::SessionModel model(service, spec);
    harness::FederationRuntime runtime(cfg);
    const harness::RunResult r = runtime.Run(model);
    std::printf("%-8d %-9d %-12.4f %-12.1f %-10.4f %-12.4f\n", nodes,
                brokers, r.total_energy_kwh, r.avg_response_s,
                r.slo_violation_rate, r.avg_decision_time_s);
  }

  std::printf(
      "\nburst sensitivity on the 16-node fleet (sinusoidal amplitude):\n");
  std::printf("%-11s %-12s %-12s %-10s %-14s\n", "amplitude",
              "energy(kWh)", "response(s)", "slo_rate", "fine-tunes");
  for (double amplitude : {0.0, 0.5, 0.9}) {
    // A fresh service per amplitude: the shared surrogate fine-tunes
    // in place, and the sensitivity sweep needs identical starts.
    serve::ResilienceService fresh(serve::ServiceConfig{});
    fresh.TrainOffline(trace, 8);
    harness::RunConfig cfg;
    cfg.intervals = 40;
    cfg.seed = 44;
    cfg.workload.burst_amplitude = amplitude;
    cfg.workload.regime_shift_prob = amplitude > 0 ? 0.08 : 0.0;
    serve::FederationSpec spec;
    spec.name = "burst";
    serve::SessionModel model(fresh, spec);
    harness::FederationRuntime runtime(cfg);
    const harness::RunResult r = runtime.Run(model);
    std::printf("%-11.1f %-12.4f %-12.1f %-10.4f %-14d\n", amplitude,
                r.total_energy_kwh, r.avg_response_s, r.slo_violation_rate,
                model.finetune_count());
  }
  std::printf(
      "\nexpected: more volatile workloads trigger more confidence dips "
      "and therefore more (but still parsimonious) fine-tuning.\n");
  return 0;
}
