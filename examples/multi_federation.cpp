// Scenario: multi-tenant serving — EIGHT heterogeneous edge federations
// (8 to 32 hosts) served concurrently by ONE ResilienceService over a
// small pool of GON worker replicas.
//
// Demonstrates the serving-layer properties:
//   * one shared surrogate serves federations of different host counts
//     (the GAT branch is host-count agnostic);
//   * sessions are isolated: each keeps its own POT confidence gate,
//     running dataset Gamma and repair rng;
//   * a confidence breach in ANY federation fine-tunes the shared master,
//     and every worker replica re-syncs before its next decision.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/runtime.h"
#include "harness/serve_experiment.h"
#include "obs/export.h"
#include "serve/service.h"

int main() {
  using namespace carol;
  std::printf("== multi-federation serving: 8 heterogeneous fleets, one "
              "service ==\n\n");

  // One shared surrogate, trained once on the default 16-node fleet.
  serve::ServiceConfig service_cfg;
  service_cfg.gon.hidden_width = 48;
  service_cfg.num_workers = 4;
  // The default step-driven pipeline stacks concurrent sessions' repair
  // frontiers into shared kernel passes with ZERO linger: no wall-clock
  // window to tune, no latency trade.
  service_cfg.pipeline = true;
  serve::ResilienceService service(service_cfg);

  harness::RunConfig trace_cfg;
  trace_cfg.intervals = 60;
  trace_cfg.seed = 7;
  service.TrainOffline(harness::CollectTrainingTrace(trace_cfg, 10), 8);

  // Eight federations with heterogeneous host counts (whole 4-node
  // sites, as sim::ScaledTestbedSpecs requires): the per-session
  // mixed-H decisions exercise the service's host-count bucketing.
  const std::vector<std::pair<int, int>> fleets = {
      {8, 2}, {12, 3}, {16, 4}, {16, 4}, {20, 5}, {24, 6}, {28, 7}, {32, 8}};
  std::vector<serve::FederationSpec> specs;
  std::vector<harness::RunConfig> configs;
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    serve::FederationSpec spec;
    spec.name = "fed-" + std::to_string(i) + "-h" +
                std::to_string(fleets[i].first);
    spec.carol.gon = service_cfg.gon;  // ignored: surrogate is shared
    spec.carol.seed = 100 + static_cast<unsigned>(i);
    specs.push_back(spec);

    harness::RunConfig cfg;
    cfg.intervals = 20;
    cfg.seed = 40 + static_cast<unsigned>(i);
    cfg.num_nodes = fleets[i].first;
    cfg.num_brokers = fleets[i].second;
    cfg.workload.lambda_per_site = 1.2 * fleets[i].first / 16.0;
    configs.push_back(cfg);
  }

  const harness::ServiceRunReport report =
      harness::RunFederationsViaServiceReport(service, specs, configs);
  const std::vector<harness::RunResult>& results = report.results;

  std::printf("%-14s %-8s %-12s %-12s %-10s %-10s %-10s %-9s\n",
              "federation", "hosts", "energy(kWh)", "response(s)",
              "slo_rate", "p50(ms)", "p99(ms)", "finetunes");
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Per-session QoS/latency breakdown (harness::SessionQos): the
    // service-side decision percentiles, not just the fleet aggregate.
    const harness::SessionQos& qos = report.sessions[i];
    std::printf("%-14s %-8d %-12.4f %-12.1f %-10.4f %-10.2f %-10.2f "
                "%-9d\n",
                specs[i].name.c_str(), fleets[i].first,
                results[i].total_energy_kwh, results[i].avg_response_s,
                results[i].slo_violation_rate, qos.decision_p50_ms,
                qos.decision_p99_ms, qos.finetunes);
  }

  const serve::ServiceStats stats = service.stats();
  std::printf("\nservice totals: %llu repairs, %llu observes, %llu "
              "fine-tunes (weight epoch %llu)\n",
              static_cast<unsigned long long>(stats.repairs),
              static_cast<unsigned long long>(stats.observes),
              static_cast<unsigned long long>(stats.finetunes),
              static_cast<unsigned long long>(stats.weight_epoch));
  std::printf("pipeline stacking: %llu frontier jobs over %llu kernel "
              "passes (%llu candidate states) -> stacking ratio %.2f "
              "with zero linger\n",
              static_cast<unsigned long long>(report.pipeline_jobs),
              static_cast<unsigned long long>(report.pipeline_passes),
              static_cast<unsigned long long>(report.pipeline_states),
              report.stacking_ratio);
  std::printf("\nexpected: every fleet finishes with valid topologies and "
              "bounded decision latency; fine-tunes from volatile fleets "
              "propagate to all worker replicas; concurrently repairing "
              "fleets share GON kernel passes (stacking ratio > 1 when "
              "sessions outnumber idle workers).\n");

  // The observability surface: the same counters as stats() plus the
  // repair-path latency histograms, rendered scrape-ready.
  std::printf("\n-- service MetricsSnapshot() (Prometheus text) --\n%s",
              obs::ToPrometheusText(service.MetricsSnapshot()).c_str());
  return 0;
}
