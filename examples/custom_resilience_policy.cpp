// Scenario: plugging a custom resilience policy into the harness.
//
// Shows the extension surface a downstream user would touch: implement
// core::ResilienceModel, drop it into FederationRuntime, and compare
// against CAROL's components re-used a la carte (here: the node-shift
// neighborhoods + tabu search with a hand-written objective instead of
// the GON surrogate).
#include <cstdio>

#include "core/carol.h"
#include "core/node_shift.h"
#include "core/resilience.h"
#include "core/tabu.h"
#include "harness/runtime.h"

namespace {

using namespace carol;

// A "balance-first" policy: on failure, tabu-search the node-shift space
// minimizing a hand-written objective (LEI size imbalance + broker
// scarcity penalty) instead of a learned surrogate. No training, no
// fine-tuning, deterministic.
class BalanceFirstPolicy : public core::ResilienceModel {
 public:
  std::string name() const override { return "balance-first"; }

  sim::Topology Repair(const sim::Topology& current,
                       const std::vector<sim::NodeId>& failed_brokers,
                       const sim::SystemSnapshot& snapshot) override {
    if (failed_brokers.empty()) return current;
    sim::Topology topo = current;
    std::vector<bool> alive = snapshot.alive;
    if (alive.size() != static_cast<std::size_t>(topo.num_nodes())) {
      alive.assign(static_cast<std::size_t>(topo.num_nodes()), true);
    }
    for (sim::NodeId b : failed_brokers) {
      alive[static_cast<std::size_t>(b)] = false;
    }
    for (sim::NodeId failed : failed_brokers) {
      if (!topo.is_broker(failed)) continue;
      const auto repairs =
          core::FailureNeighbors(topo, failed, alive, {});
      if (repairs.empty()) continue;
      core::TabuSearch search(core::TabuConfig{.max_iterations = 5,
                                               .max_evaluations = 80});
      topo = search.Optimize(
          repairs.front(),
          [&](const sim::Topology& g) {
            return core::LocalNeighbors(g, alive, {});
          },
          [](const sim::Topology& g) { return Objective(g); });
    }
    return topo;
  }

  double MemoryFootprintMb() const override { return 0.01; }

 private:
  static double Objective(const sim::Topology& g) {
    // LEI size imbalance plus penalties for too-few / too-many brokers.
    const auto brokers = g.brokers();
    const double target_leis = g.num_nodes() / 4.0;
    double imbalance = 0.0;
    const double mean = static_cast<double>(g.worker_count()) /
                        static_cast<double>(brokers.size());
    for (sim::NodeId b : brokers) {
      imbalance +=
          std::abs(static_cast<double>(g.workers_of(b).size()) - mean);
    }
    return imbalance +
           2.0 * std::abs(static_cast<double>(brokers.size()) -
                          target_leis);
  }
};

}  // namespace

int main() {
  std::printf("== custom resilience policy vs CAROL ==\n\n");

  harness::RunConfig trace_cfg;
  trace_cfg.intervals = 80;
  trace_cfg.seed = 7;
  const workload::Trace trace =
      harness::CollectTrainingTrace(trace_cfg, 10);
  core::CarolModel carol((core::CarolConfig()));
  carol.TrainOffline(trace, 10);

  BalanceFirstPolicy custom;

  harness::RunConfig cfg;
  cfg.intervals = 40;
  cfg.seed = 9;
  const harness::RunResult rc =
      harness::FederationRuntime(cfg).Run(carol);
  const harness::RunResult rb =
      harness::FederationRuntime(cfg).Run(custom);

  std::printf("%-15s %-12s %-12s %-10s %-12s\n", "model", "energy(kWh)",
              "response(s)", "slo_rate", "decision(s)");
  std::printf("%-15s %-12.4f %-12.1f %-10.4f %-12.4f\n", rc.model_name.c_str(),
              rc.total_energy_kwh, rc.avg_response_s, rc.slo_violation_rate,
              rc.avg_decision_time_s);
  std::printf("%-15s %-12.4f %-12.1f %-10.4f %-12.4f\n", rb.model_name.c_str(),
              rb.total_energy_kwh, rb.avg_response_s, rb.slo_violation_rate,
              rb.avg_decision_time_s);
  std::printf(
      "\nThe hand-written objective is cheap and deterministic but blind "
      "to workload state; the GON surrogate adapts its choice to the "
      "observed metrics.\n");
  return 0;
}
