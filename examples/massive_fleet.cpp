// Scenario: a MASSIVE fleet — one 4096-host federation (256 brokers,
// 64 geographic sites) stepped through the shared simkern protocol with
// the event-driven engine, an open-loop million-device arrival stream,
// and a broker fault storm repaired by the REAL decision path: a
// subgraph-extracted GON/tabu repair (core::PlanScopedDecision) planning
// on the affected region only.
//
// What this demonstrates (and what CI smoke-checks):
//   * the large-fleet tier is usable end to end: H=4096 steps in
//     microseconds because O(changed) stepping only touches the engaged
//     and dirtied hosts, not the whole fleet;
//   * the GON decision path scales the same way: RepairSubgraph pulls
//     the failed brokers' LEIs plus the kernel's hint sets
//     (simkern::RepairScopeHints) into an H_sub <= ~128 problem, so the
//     full Algorithm-2 search runs at fleet scale without ever building
//     a 4096-row GON state;
//   * workload::ArrivalProcess scales by construction — its state is
//     O(1) in the device population (FromUsers(1e6, ...)), so a million
//     simulated devices cost the same as sixteen;
//   * the protocol loop is the SAME IntervalStepper the harness, the
//     trace collector and the scenario driver run — only the hooks
//     differ, and the fault storm flows through the same detect ->
//     repair -> fallback path as a real incident;
//   * the whole thing is deterministic: two runs from the same seeds
//     produce bit-identical energy and identical topology hashes.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/carol.h"
#include "core/gon.h"
#include "core/subgraph.h"
#include "faults/detector.h"
#include "sim/federation.h"
#include "sim/scheduler.h"
#include "sim/topology.h"
#include "sim/types.h"
#include "simkern/stepper.h"
#include "workload/arrival.h"
#include "workload/profiles.h"

namespace {

using namespace carol;

constexpr int kHosts = 4096;
constexpr int kBrokers = kHosts / 16;
constexpr int kSites = 64;
constexpr int kIntervals = 24;

struct RunOutcome {
  double energy_kwh = 0.0;
  long long tasks_completed = 0;
  long long repairs = 0;
  std::size_t topology_hash = 0;
};

// A serving-sized surrogate + search budget (the bench/scenario_suite
// configuration): small enough for a smoke test, real enough that every
// repair is a genuine GON-scored tabu search.
core::CarolConfig PlannerConfig() {
  core::CarolConfig cfg;
  cfg.gon.hidden_width = 32;
  cfg.gon.num_layers = 2;
  cfg.gon.gat_width = 16;
  cfg.gon.generation_steps = 5;
  cfg.tabu.max_iterations = 3;
  cfg.tabu.max_evaluations = 40;
  return cfg;
}

// Fault storm + scoped GON repair + open-loop arrivals, on top of the
// minimal protocol defaults.
class MassiveFleetHooks : public simkern::IntervalHooks {
 public:
  MassiveFleetHooks(workload::ArrivalProcess* arrivals, common::Rng storm,
                    common::Rng planner)
      : arrivals_(arrivals),
        storm_(storm),
        planner_rng_(planner),
        config_(PlannerConfig()),
        gon_(config_.gon) {
    scope_.enabled = true;
    scope_.max_hosts = 128;
  }

  std::optional<sim::Topology> Repair(simkern::StepContext& ctx) override {
    if (ctx.report->failed_brokers.empty()) return std::nullopt;
    ++outcome.repairs;
    // The real decision path at fleet scale: extract the affected
    // region (failed LEIs + the kernel's latency-tie/engaged/dirty
    // hints), run the GON-scored tabu search on the H_sub problem, and
    // splice the decision back. An invalid result would fall through to
    // the stepper's FallbackRepair guard like any other driver.
    const std::vector<sim::NodeId> hints =
        simkern::RepairScopeHints(*ctx.fed, ctx.report->failed_brokers);
    return core::PlanScopedDecision(
        ctx.fed->topology(), ctx.report->failed_brokers,
        ctx.fed->last_snapshot(), hints, scope_, config_, planner_rng_,
        gon_, encoder_);
  }

  void InjectFaults(simkern::StepContext& ctx) override {
    // A storm burst every 8 intervals: several brokers and a handful of
    // workers fail for 1.5 intervals, so detection, repair and recovery
    // all fire while most of the fleet stays quiet (the O(changed) case).
    if (ctx.interval % 8 != 2) return;
    const double now = ctx.fed->now_s();
    const double dt = ctx.fed->config().interval_seconds;
    for (int k = 0; k < 3; ++k) {
      const auto b = static_cast<sim::NodeId>(
          storm_.Choice(static_cast<std::size_t>(kBrokers)) * 16);
      ctx.fed->SetFailed(b, now, now + 1.5 * dt);
    }
    for (int k = 0; k < 8; ++k) {
      const auto n = static_cast<sim::NodeId>(
          storm_.Choice(static_cast<std::size_t>(kHosts)));
      ctx.fed->SetFailed(n, now, now + 1.5 * dt);
    }
  }

  std::vector<sim::Task> GenerateArrivals(simkern::StepContext& ctx) override {
    return arrivals_->Drain(ctx.fed->now_s() +
                            ctx.fed->config().interval_seconds);
  }

  void Observe(simkern::StepContext& ctx,
               const sim::IntervalResult& r) override {
    (void)ctx;
    outcome.energy_kwh += r.energy_kwh;
    outcome.tasks_completed += r.completed;
  }

  bool WantSnapshot(const simkern::StepContext& ctx) const override {
    (void)ctx;
    return true;  // the planner reads per-host rows and alive flags
  }

  RunOutcome outcome;

 private:
  workload::ArrivalProcess* arrivals_;
  common::Rng storm_;
  common::Rng planner_rng_;
  core::CarolConfig config_;
  core::GonModel gon_;
  core::FeatureEncoder encoder_;
  core::ScopedRepairOptions scope_;
};

RunOutcome RunOnce() {
  sim::SimConfig cfg;
  cfg.event_driven = true;
  cfg.network.num_sites = kSites;
  sim::Federation fed(sim::ScaledTestbedSpecs(kHosts),
                      sim::Topology::Initial(kHosts, kBrokers), cfg,
                      common::Rng(42));
  sim::LeastUtilizationScheduler scheduler;
  // A million devices at a duty cycle that lands ~175 tasks per interval
  // — the point is the POPULATION: the process folds it into a rate, so
  // its state is O(1) whether the fleet serves 16 devices or a million.
  workload::ArrivalProcess arrivals(
      workload::AIoTBenchProfiles(),
      workload::ArrivalConfig::FromUsers(1e6, 0.05, kSites), common::Rng(7));
  MassiveFleetHooks hooks(&arrivals, common::Rng(99), common::Rng(1234));

  simkern::IntervalStepper stepper(fed, scheduler, hooks);
  stepper.Run(kIntervals);
  hooks.outcome.topology_hash = fed.topology().Hash();
  return hooks.outcome;
}

}  // namespace

int main() {
  std::printf("== massive fleet: 4096 hosts, 256 brokers, 64 sites, "
              "1M-device arrival stream, scoped GON repair ==\n\n");

  const RunOutcome a = RunOnce();
  const RunOutcome b = RunOnce();

  std::printf("%-26s %.6f kWh\n", "energy", a.energy_kwh);
  std::printf("%-26s %lld\n", "tasks completed", a.tasks_completed);
  std::printf("%-26s %lld\n", "storm repairs", a.repairs);
  std::printf("%-26s %zx\n", "final topology hash", a.topology_hash);

  if (a.tasks_completed <= 0) {
    std::printf("\nFAIL: the fleet completed no work\n");
    return 1;
  }
  if (a.repairs == 0) {
    std::printf("\nFAIL: the fault storm never triggered a repair\n");
    return 1;
  }
  if (a.energy_kwh != b.energy_kwh ||
      a.tasks_completed != b.tasks_completed ||
      a.topology_hash != b.topology_hash) {
    std::printf("\nFAIL: two runs from the same seeds diverged "
                "(%.17g vs %.17g kWh, %lld vs %lld tasks, %zx vs %zx)\n",
                a.energy_kwh, b.energy_kwh, a.tasks_completed,
                b.tasks_completed, a.topology_hash, b.topology_hash);
    return 1;
  }

  std::printf("\nexpected: both runs are bit-identical; each storm repair "
              "ran a real GON-scored tabu search on an extracted subgraph "
              "(<= 128 of 4096 hosts) and spliced the decision back.\n");
  return 0;
}
