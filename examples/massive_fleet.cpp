// Scenario: a MASSIVE fleet — one 4096-host federation (256 brokers,
// 64 geographic sites) stepped through the shared simkern protocol with
// the event-driven engine, an open-loop million-device arrival stream,
// and a broker fault storm repaired by the shared FallbackRepair guard.
//
// What this demonstrates (and what CI smoke-checks):
//   * the large-fleet tier is usable end to end: H=4096 steps in
//     microseconds because O(changed) stepping only touches the engaged
//     and dirtied hosts, not the whole fleet;
//   * workload::ArrivalProcess scales by construction — its state is
//     O(1) in the device population (FromUsers(1e6, ...)), so a million
//     simulated devices cost the same as sixteen;
//   * the protocol loop is the SAME IntervalStepper the harness, the
//     trace collector and the scenario driver run — only the hooks
//     differ, and the fault storm flows through the same detect ->
//     repair -> fallback path as a real incident;
//   * the whole thing is deterministic: two runs from the same seeds
//     produce bit-identical energy and identical topology hashes.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "faults/detector.h"
#include "sim/federation.h"
#include "sim/scheduler.h"
#include "sim/topology.h"
#include "sim/types.h"
#include "simkern/stepper.h"
#include "workload/arrival.h"
#include "workload/profiles.h"

namespace {

using namespace carol;

constexpr int kHosts = 4096;
constexpr int kBrokers = kHosts / 16;
constexpr int kSites = 64;
constexpr int kIntervals = 24;

struct RunOutcome {
  double energy_kwh = 0.0;
  long long tasks_completed = 0;
  long long repairs = 0;
  std::size_t topology_hash = 0;
};

// Fault storm + fallback repair + open-loop arrivals, on top of the
// minimal protocol defaults.
class MassiveFleetHooks : public simkern::IntervalHooks {
 public:
  MassiveFleetHooks(workload::ArrivalProcess* arrivals, common::Rng storm)
      : arrivals_(arrivals), storm_(storm) {}

  std::optional<sim::Topology> Repair(simkern::StepContext& ctx) override {
    if (ctx.report->failed_brokers.empty()) return std::nullopt;
    ++outcome.repairs;
    // The repair of last resort IS the decision here: no model in the
    // loop, just the shared promote-orphans/merge-LEI guard every driver
    // falls back on. A 4096-host example with the full GON/tabu search
    // would be a benchmark, not a smoke test.
    return simkern::FallbackRepair(ctx.fed->topology(),
                                   ctx.report->failed_brokers, *ctx.fed);
  }

  void InjectFaults(simkern::StepContext& ctx) override {
    // A storm burst every 8 intervals: several brokers and a handful of
    // workers fail for 1.5 intervals, so detection, repair and recovery
    // all fire while most of the fleet stays quiet (the O(changed) case).
    if (ctx.interval % 8 != 2) return;
    const double now = ctx.fed->now_s();
    const double dt = ctx.fed->config().interval_seconds;
    for (int k = 0; k < 3; ++k) {
      const auto b = static_cast<sim::NodeId>(
          storm_.Choice(static_cast<std::size_t>(kBrokers)) * 16);
      ctx.fed->SetFailed(b, now, now + 1.5 * dt);
    }
    for (int k = 0; k < 8; ++k) {
      const auto n = static_cast<sim::NodeId>(
          storm_.Choice(static_cast<std::size_t>(kHosts)));
      ctx.fed->SetFailed(n, now, now + 1.5 * dt);
    }
  }

  std::vector<sim::Task> GenerateArrivals(simkern::StepContext& ctx) override {
    return arrivals_->Drain(ctx.fed->now_s() +
                            ctx.fed->config().interval_seconds);
  }

  void Observe(simkern::StepContext& ctx,
               const sim::IntervalResult& r) override {
    (void)ctx;
    outcome.energy_kwh += r.energy_kwh;
    outcome.tasks_completed += r.completed;
  }

  bool WantSnapshot(const simkern::StepContext& ctx) const override {
    (void)ctx;
    return false;  // open-loop: nothing reads per-host rows
  }

  RunOutcome outcome;

 private:
  workload::ArrivalProcess* arrivals_;
  common::Rng storm_;
};

RunOutcome RunOnce() {
  sim::SimConfig cfg;
  cfg.event_driven = true;
  cfg.network.num_sites = kSites;
  sim::Federation fed(sim::ScaledTestbedSpecs(kHosts),
                      sim::Topology::Initial(kHosts, kBrokers), cfg,
                      common::Rng(42));
  sim::LeastUtilizationScheduler scheduler;
  // A million devices at a duty cycle that lands ~175 tasks per interval
  // — the point is the POPULATION: the process folds it into a rate, so
  // its state is O(1) whether the fleet serves 16 devices or a million.
  workload::ArrivalProcess arrivals(
      workload::AIoTBenchProfiles(),
      workload::ArrivalConfig::FromUsers(1e6, 0.05, kSites), common::Rng(7));
  MassiveFleetHooks hooks(&arrivals, common::Rng(99));

  simkern::IntervalStepper stepper(fed, scheduler, hooks);
  stepper.Run(kIntervals);
  hooks.outcome.topology_hash = fed.topology().Hash();
  return hooks.outcome;
}

}  // namespace

int main() {
  std::printf("== massive fleet: 4096 hosts, 256 brokers, 64 sites, "
              "1M-device arrival stream ==\n\n");

  const RunOutcome a = RunOnce();
  const RunOutcome b = RunOnce();

  std::printf("%-26s %.6f kWh\n", "energy", a.energy_kwh);
  std::printf("%-26s %lld\n", "tasks completed", a.tasks_completed);
  std::printf("%-26s %lld\n", "storm repairs", a.repairs);
  std::printf("%-26s %zx\n", "final topology hash", a.topology_hash);

  if (a.tasks_completed <= 0) {
    std::printf("\nFAIL: the fleet completed no work\n");
    return 1;
  }
  if (a.repairs == 0) {
    std::printf("\nFAIL: the fault storm never triggered a repair\n");
    return 1;
  }
  if (a.energy_kwh != b.energy_kwh ||
      a.tasks_completed != b.tasks_completed ||
      a.topology_hash != b.topology_hash) {
    std::printf("\nFAIL: two runs from the same seeds diverged "
                "(%.17g vs %.17g kWh, %lld vs %lld tasks, %zx vs %zx)\n",
                a.energy_kwh, b.energy_kwh, a.tasks_completed,
                b.tasks_completed, a.topology_hash, b.topology_hash);
    return 1;
  }

  std::printf("\nexpected: both runs are bit-identical; the storm forces "
              "repairs but the quiet 99%% of the fleet never enters the "
              "per-interval hot path.\n");
  return 0;
}
