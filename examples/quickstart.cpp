// Quickstart: the smallest end-to-end CAROL deployment.
//
//   1. Simulate a 16-node edge federation (4 LEIs) and collect a DeFog
//      execution trace.
//   2. Train the GON surrogate offline on that trace.
//   3. Run CAROL against AIoT workloads with byzantine broker failures.
//   4. Print the QoS report.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/carol.h"
#include "harness/runtime.h"

int main() {
  using namespace carol;

  std::printf("== CAROL quickstart ==\n");

  // 1. Offline trace: DeFog benchmarks, topology shuffled every 10
  //    intervals (paper §IV-D).
  harness::RunConfig trace_cfg;
  trace_cfg.intervals = 80;
  trace_cfg.seed = 7;
  std::printf("[1/3] collecting DeFog training trace (%d intervals)...\n",
              trace_cfg.intervals);
  const workload::Trace trace = harness::CollectTrainingTrace(trace_cfg, 10);

  // 2. Offline GON training (Algorithm 1).
  std::printf("[2/3] training the GON surrogate...\n");
  core::CarolConfig config;  // paper defaults: 3 layers, alpha=beta=0.5
  core::CarolModel carol(config);
  const auto history = carol.TrainOffline(trace, /*max_epochs=*/10);
  std::printf("      %zu epochs, final loss %.4f, confidence %.3f\n",
              history.size(), history.back().loss,
              history.back().confidence);

  // 3. Test run: AIoT workloads + fault injection (Algorithm 2 live).
  harness::RunConfig run_cfg;
  run_cfg.intervals = 40;
  run_cfg.seed = 1;
  std::printf("[3/3] running %d intervals with fault injection...\n",
              run_cfg.intervals);
  harness::FederationRuntime runtime(run_cfg);
  const harness::RunResult result = runtime.Run(carol);

  std::printf("\n-- report ---------------------------------------------\n");
  std::printf("tasks completed          : %d / %d\n", result.completed,
              result.total_tasks);
  std::printf("energy consumption       : %.4f kWh\n",
              result.total_energy_kwh);
  std::printf("avg response time        : %.1f s\n", result.avg_response_s);
  std::printf("SLO violation rate       : %.2f %%\n",
              100.0 * result.slo_violation_rate);
  std::printf("broker failures detected : %d\n",
              result.broker_failures_detected);
  std::printf("avg decision time        : %.4f s\n",
              result.avg_decision_time_s);
  std::printf("fine-tune events         : %d (overhead %.2f s)\n",
              carol.finetune_count(), result.total_finetune_s);
  std::printf("model memory             : %.2f MB\n", result.memory_mb);
  return 0;
}
